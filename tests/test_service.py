"""Tests for the campaign service (``repro.service``).

Covers the full robustness contract from EXPERIMENTS.md, "Campaign
service":

- canonical spec builders shared with the CLI (same run key, or HTTP
  jobs could never resume CLI ledgers);
- the crash-safe job store (atomic records, restart recovery, orphan
  ledger adoption);
- admission control (idempotent resubmit, explicit queue-full, circuit
  breaker, draining) at both the scheduler and HTTP layers;
- the end-to-end acceptance gate: a campaign submitted over HTTP,
  interrupted by SIGKILL-ing the server mid-run with worker crashes
  injected, completes after a restart with block records byte-identical
  to an uninterrupted run — for both sampling backends;
- graceful SIGTERM drain with exit code 130;
- directory-level ledger linting (``repro lint --ledger <dir>``).
"""

import json
import os
import signal
import subprocess
import sys
import threading
import time
import urllib.error
import urllib.request
from pathlib import Path

import pytest

from repro.durable import (
    DurableExecutor,
    FaultPlan,
    RetryPolicy,
    RunLedger,
    lint_ledger_dir,
    parse_ledger,
    run_key,
    scan_ledgers,
)
from repro.service import (
    JobStore,
    Scheduler,
    ServiceClient,
    SpecError,
    TERMINAL_STATES,
    build_compare_spec,
    build_memory_spec,
    execute_spec,
    read_service_address,
    spec_from_payload,
)
from repro.service.server import CampaignServer

FAST = RetryPolicy(block_timeout=60.0, max_attempts=3, retry_base_delay=0.001)

#: Small canonical payloads (SHOT_BLOCK=1024 => two blocks each).
MEM_PAYLOAD = {"command": "memory", "distance": 3, "shots": 2048, "seed": 3}
MEM_PAYLOAD_2 = {"command": "memory", "distance": 3, "shots": 2048, "seed": 4}


def _reference_run(spec, path, *, workers=1):
    """The uninterrupted reference: the CLI's own execution path."""
    ledger = RunLedger(path, spec)
    executor = DurableExecutor(ledger, workers=workers, policy=FAST,
                               stop_interval_blocks=1)
    try:
        result = execute_spec(spec, executor)
    finally:
        ledger.close()
    return result


# ---------------------------------------------------------------------------
# Specs
# ---------------------------------------------------------------------------
class TestSpecs:
    def test_payload_round_trips_to_cli_identical_spec(self):
        # The builder IS the CLI's spec: same dict, same run key.
        spec = spec_from_payload(MEM_PAYLOAD)
        assert spec == build_memory_spec(distance=3, shots=2048, seed=3)
        # Submitting a previously returned spec verbatim is idempotent.
        assert spec_from_payload(spec) == spec
        assert run_key(spec_from_payload(spec)) == run_key(spec)

    def test_compare_policy_resolution_matches_cli(self):
        assert build_compare_spec()["policy"] == "auto"
        assert build_compare_spec(correlated=True)["policy"] == "surgery_only"
        assert build_compare_spec(policy="transversal_preferred")[
            "policy"] == "transversal_preferred"

    def test_unknown_field_rejected(self):
        with pytest.raises(SpecError, match="unknown spec field"):
            spec_from_payload({**MEM_PAYLOAD, "shotss": 100})

    def test_unknown_command_rejected(self):
        with pytest.raises(SpecError, match="command must be one of"):
            spec_from_payload({"command": "explode"})

    @pytest.mark.parametrize(
        "bad",
        [
            {"distance": 4},
            {"distance": 2},
            {"p": 1.5},
            {"shots": 0},
            {"shots": True},
            {"scheme": "nope"},
            {"backend": "gpu"},
        ],
    )
    def test_invalid_values_rejected(self, bad):
        with pytest.raises(SpecError):
            spec_from_payload({**MEM_PAYLOAD, **bad})

    def test_stamped_field_mismatch_rejected(self):
        with pytest.raises(SpecError, match="shot_block"):
            spec_from_payload({**MEM_PAYLOAD, "shot_block": 7})

    def test_compare_list_fields_validated(self):
        with pytest.raises(SpecError, match="must be a list"):
            spec_from_payload({"command": "compare", "distances": 3})
        with pytest.raises(SpecError, match="odd integer"):
            spec_from_payload({"command": "compare", "distances": [4]})


# ---------------------------------------------------------------------------
# Job store
# ---------------------------------------------------------------------------
class TestJobStore:
    def test_create_persists_and_reloads(self, tmp_path):
        store = JobStore(tmp_path)
        spec = spec_from_payload(MEM_PAYLOAD)
        job = store.create(spec)
        assert job.id == run_key(spec)
        assert store.job_path(job.id).exists()
        # A fresh store over the same directory sees the same record.
        reopened = JobStore(tmp_path)
        again = reopened.get(job.id)
        assert again is not None
        assert again.to_dict() == job.to_dict()

    def test_saves_are_atomic_no_tmp_left_behind(self, tmp_path):
        store = JobStore(tmp_path)
        job = store.create(spec_from_payload(MEM_PAYLOAD))
        job.state = "running"
        store.save(job)
        assert not list(tmp_path.glob("*.tmp"))
        assert json.loads(store.job_path(job.id).read_text())[
            "state"] == "running"

    def test_recover_requeues_in_flight_jobs_in_seq_order(self, tmp_path):
        store = JobStore(tmp_path)
        first = store.create(spec_from_payload(MEM_PAYLOAD))
        second = store.create(spec_from_payload(MEM_PAYLOAD_2))
        first.state = "running"
        store.save(first)
        second.state = "interrupted"
        store.save(second)
        reopened = JobStore(tmp_path)
        requeued = reopened.recover()
        assert [j.id for j in requeued] == [first.id, second.id]
        assert all(j.state == "queued" for j in requeued)

    def test_recover_leaves_terminal_jobs_alone(self, tmp_path):
        store = JobStore(tmp_path)
        job = store.create(spec_from_payload(MEM_PAYLOAD))
        job.state = "done"
        store.save(job)
        assert JobStore(tmp_path).recover() == []

    def test_recover_adopts_orphan_ledgers(self, tmp_path):
        # An operator copies a bare ledger into the directory: its
        # durable blocks must not be stranded.  The spec in the ledger
        # header is enough to rebuild the job record.
        spec = spec_from_payload(MEM_PAYLOAD)
        key = run_key(spec)
        RunLedger(tmp_path / f"{key}.jsonl", spec).close()
        store = JobStore(tmp_path)
        requeued = store.recover()
        assert [j.id for j in requeued] == [key]
        assert store.get(key).spec == spec

    def test_recover_skips_foreign_renamed_ledgers(self, tmp_path):
        spec = spec_from_payload(MEM_PAYLOAD)
        RunLedger(tmp_path / "renamed.jsonl", spec).close()
        store = JobStore(tmp_path)
        # run_key(spec) != "renamed" -> not adopted (lint flags LED008).
        assert store.recover() == []

    def test_invalid_job_record_fails_loudly(self, tmp_path):
        (tmp_path / "broken.job.json").write_text("{\"id\": ")
        with pytest.raises(RuntimeError, match="invalid job record"):
            JobStore(tmp_path)


# ---------------------------------------------------------------------------
# Scheduler admission (no run loop started: the queue holds still)
# ---------------------------------------------------------------------------
class TestAdmission:
    def test_full_queue_is_explicit_never_a_hang(self, tmp_path):
        scheduler = Scheduler(JobStore(tmp_path), queue_limit=1, policy=FAST)
        assert scheduler.admit(
            spec_from_payload(MEM_PAYLOAD)).outcome == "accepted"
        decision = scheduler.admit(spec_from_payload(MEM_PAYLOAD_2))
        assert decision.outcome == "queue-full"
        assert "capacity" in decision.detail

    def test_resubmission_is_idempotent(self, tmp_path):
        scheduler = Scheduler(JobStore(tmp_path), policy=FAST)
        spec = spec_from_payload(MEM_PAYLOAD)
        first = scheduler.admit(spec)
        second = scheduler.admit(spec)
        assert (first.outcome, second.outcome) == ("accepted", "exists")
        assert second.job.id == first.job.id

    def test_failed_job_is_requeued_to_resume(self, tmp_path):
        store = JobStore(tmp_path)
        scheduler = Scheduler(store, policy=FAST)
        spec = spec_from_payload(MEM_PAYLOAD)
        job = scheduler.admit(spec).job
        job.state = "failed"
        store.save(job)
        # Drop it from the queue's perspective by rebuilding the
        # scheduler (as a restart would).
        scheduler = Scheduler(store, policy=FAST)
        assert scheduler.admit(spec).outcome == "requeued"
        assert store.get(job.id).state == "queued"

    def test_circuit_breaker_opens_after_repeated_strikes(self, tmp_path):
        store = JobStore(tmp_path)
        scheduler = Scheduler(store, policy=FAST, breaker_threshold=3)
        spec = spec_from_payload(MEM_PAYLOAD)
        job = scheduler.admit(spec).job
        job.state = "failed"
        job.strikes = 3
        store.save(job)
        decision = Scheduler(store, policy=FAST).admit(spec)
        assert decision.outcome == "breaker-open"
        assert "circuit breaker" in decision.detail

    def test_draining_rejects_everything(self, tmp_path):
        scheduler = Scheduler(JobStore(tmp_path), policy=FAST)
        scheduler.drain(timeout=1.0)
        assert scheduler.admit(
            spec_from_payload(MEM_PAYLOAD)).outcome == "draining"


# ---------------------------------------------------------------------------
# Scheduler end-to-end (run loop started)
# ---------------------------------------------------------------------------
def _wait_terminal(store, job_id, timeout=120.0):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        job = store.get(job_id)
        if job is not None and job.state in TERMINAL_STATES:
            return job
        time.sleep(0.02)
    raise TimeoutError(f"job {job_id} not terminal after {timeout}s")


class TestSchedulerRuns:
    def test_memory_job_runs_to_done_with_wilson_events(self, tmp_path):
        spec = spec_from_payload(MEM_PAYLOAD)
        reference = _reference_run(spec, tmp_path / "ref.jsonl")
        store = JobStore(tmp_path / "svc")
        scheduler = Scheduler(store, policy=FAST)
        scheduler.start()
        try:
            job_id = scheduler.admit(spec).job.id
            job = _wait_terminal(store, job_id)
        finally:
            scheduler.drain(timeout=30.0)
        assert job.state == "done"
        assert job.strikes == 0
        assert job.result == reference
        # One Wilson-interval event per completed block, cumulative.
        events = scheduler.events(job_id)
        assert len(events) == 2
        assert [e["completed_blocks"] for e in events] == [1, 2]
        assert events[-1]["shots"] == 2048
        assert all(len(e["ci"]) == 2 for e in events)
        final = job.result["units"][0]
        lo, hi = events[-1]["ci"]
        assert final["ci"] == [lo, hi]
        # The service ledger's blocks equal the reference's.
        assert (parse_ledger(store.ledger_path(job_id)).blocks
                == parse_ledger(tmp_path / "ref.jsonl").blocks)

    def test_quarantined_blocks_degrade_and_strike(self, tmp_path):
        store = JobStore(tmp_path)
        scheduler = Scheduler(
            store,
            policy=RetryPolicy(block_timeout=60.0, max_attempts=1,
                               retry_base_delay=0.001),
            fault=FaultPlan(seed=1, exc_rate=1.0, max_faults_per_block=99),
        )
        scheduler.start()
        try:
            job_id = scheduler.admit(spec_from_payload(MEM_PAYLOAD)).job.id
            job = _wait_terminal(store, job_id)
        finally:
            scheduler.drain(timeout=30.0)
        assert job.state == "degraded"
        assert job.strikes == 1
        assert job.quarantined_blocks == 2
        assert "quarantined" in job.error

    def test_job_timeout_fails_the_job_not_the_service(self, tmp_path):
        store = JobStore(tmp_path)
        scheduler = Scheduler(store, policy=FAST, job_timeout=0.0)
        scheduler.start()
        try:
            job_id = scheduler.admit(spec_from_payload(MEM_PAYLOAD)).job.id
            job = _wait_terminal(store, job_id)
            assert job.state == "failed"
            assert job.strikes == 1
            assert "timeout" in job.error
            # The scheduler survives: an untimed second job completes.
            scheduler.job_timeout = None
            job2_id = scheduler.admit(spec_from_payload(MEM_PAYLOAD_2)).job.id
            assert _wait_terminal(store, job2_id).state == "done"
        finally:
            scheduler.drain(timeout=30.0)


# ---------------------------------------------------------------------------
# HTTP API (in-process server)
# ---------------------------------------------------------------------------
@pytest.fixture()
def service(tmp_path):
    store = JobStore(tmp_path)
    scheduler = Scheduler(store, policy=FAST, queue_limit=4)
    server = CampaignServer(("127.0.0.1", 0), store, scheduler)
    server.write_address_file()
    thread = threading.Thread(
        target=server.serve_forever, kwargs={"poll_interval": 0.05},
        daemon=True,
    )
    thread.start()
    scheduler.start()
    client = ServiceClient(read_service_address(tmp_path))
    yield client, store, scheduler
    scheduler.drain(timeout=30.0)
    server.shutdown()
    server.server_close()
    thread.join(timeout=10.0)


class TestHTTPAPI:
    def test_healthz_reports_fleet_queue_and_caches(self, service):
        client, _, _ = service
        code, body = client.healthz()
        assert code == 200
        assert body["status"] == "ok"
        assert body["queue_limit"] == 4
        assert body["fleet"]["alive"] == body["fleet"]["size"]
        assert set(body["caches"]) == {
            "lowering", "decoder_graph", "joint_lowering", "joint_graph",
        }

    def test_submit_wait_status_events_round_trip(self, service):
        client, store, _ = service
        code, body = client.submit(MEM_PAYLOAD)
        assert code == 202
        assert body["outcome"] == "accepted"
        job_id = body["id"]
        assert job_id == run_key(spec_from_payload(MEM_PAYLOAD))

        job = client.wait(job_id, timeout=120.0)
        assert job["state"] == "done"
        assert job["result"]["units"][0]["shots"] == 2048

        # Idempotent resubmit of the finished job.
        code, body = client.submit(MEM_PAYLOAD)
        assert (code, body["outcome"]) == (200, "exists")

        # Event stream pages with ?since=N.
        code, page = client.events(job_id, since=0)
        assert code == 200
        assert page["state"] == "done"
        assert len(page["events"]) == 2
        code, rest = client.events(job_id, since=page["next"])
        assert rest["events"] == []

        code, listing = client.jobs()
        assert [j["id"] for j in listing["jobs"]] == [job_id]

    def test_unknown_job_and_path_are_404(self, service):
        client, _, _ = service
        assert client.status("deadbeef")[0] == 404
        assert client._request("GET", "/nope")[0] == 404

    def test_invalid_payloads_are_400(self, service):
        client, _, _ = service
        code, body = client.submit({"command": "memory", "distance": 4})
        assert code == 400
        assert "distance" in body["error"]
        # Raw non-JSON body.
        request = urllib.request.Request(
            client.base_url + "/jobs", data=b"{not json", method="POST",
        )
        try:
            urllib.request.urlopen(request, timeout=10.0)
            pytest.fail("expected HTTP 400")
        except urllib.error.HTTPError as exc:
            assert exc.code == 400

    def test_saturated_queue_returns_429(self, service):
        client, _, scheduler = service
        scheduler.pause()  # hold the queue still; limit is 4
        try:
            for seed in range(10, 14):
                code, _ = client.submit({**MEM_PAYLOAD, "seed": seed})
                assert code == 202
            code, body = client.submit({**MEM_PAYLOAD, "seed": 99})
            assert code == 429
            assert body["outcome"] == "queue-full"
        finally:
            scheduler.unpause()

    def test_draining_returns_503_and_healthz_degrades(self, service):
        client, _, scheduler = service
        scheduler.drain(timeout=30.0)
        code, body = client.submit(MEM_PAYLOAD)
        assert (code, body["outcome"]) == (503, "draining")
        code, health = client.healthz()
        assert (code, health["status"]) == (200, "draining")


# ---------------------------------------------------------------------------
# Full-process robustness (subprocess `python -m repro serve`)
# ---------------------------------------------------------------------------
def _spawn_server(directory, *extra):
    env = dict(os.environ)
    env["PYTHONPATH"] = str(Path(__file__).resolve().parents[1] / "src")
    return subprocess.Popen(
        [sys.executable, "-m", "repro", "serve", "--dir", str(directory),
         "--port", "0", *extra],
        env=env,
        stdout=subprocess.PIPE,
        stderr=subprocess.STDOUT,
        text=True,
    )


def _wait_for_service(directory, proc, *, stale=None, timeout=60.0):
    """Poll until service.json is (re)written and /healthz answers."""
    deadline = time.monotonic() + timeout
    path = Path(directory) / "service.json"
    while time.monotonic() < deadline:
        if proc.poll() is not None:
            raise RuntimeError(
                f"server exited early ({proc.returncode}):\n"
                f"{proc.stdout.read()}"
            )
        if path.exists() and path.read_text() != stale:
            try:
                client = ServiceClient(read_service_address(directory),
                                       timeout=5.0)
                if client.healthz()[0] == 200:
                    return client
            except (OSError, ValueError):
                pass
        time.sleep(0.05)
    raise TimeoutError("service did not come up")


def _stop(proc):
    if proc.poll() is None:
        proc.kill()
        proc.wait(timeout=10.0)
    if proc.stdout is not None:
        proc.stdout.close()


@pytest.mark.parametrize(
    "backend,shots",
    [("packed", 8192), ("reference", 3072)],
    ids=["packed", "reference"],
)
def test_sigkill_midrun_restart_is_bit_identical(tmp_path, backend, shots):
    """The acceptance gate: SIGKILL the server mid-campaign (with worker
    crashes injected), restart over the same directory, and the finished
    job's block records are byte-identical to an uninterrupted run."""
    payload = {"command": "memory", "distance": 3, "shots": shots,
               "seed": 5, "backend": backend}
    spec = spec_from_payload(payload)
    reference = _reference_run(spec, tmp_path / "ref.jsonl", workers=2)

    svc_dir = tmp_path / "svc"
    svc_dir.mkdir()
    # Chaos keeps the job busy (crashes + retries) so the SIGKILL lands
    # mid-campaign; --max-attempts 8 makes quarantine all but impossible.
    chaos_server = _spawn_server(
        svc_dir, "--workers", "2", "--chaos", "crash=0.5,seed=3",
        "--max-attempts", "8", "--retry-base-delay", "0.05",
    )
    killed_midrun = False
    try:
        client = _wait_for_service(svc_dir, chaos_server)
        code, body = client.submit(payload)
        assert code == 202
        job_id = body["id"]
        assert job_id == run_key(spec)
        deadline = time.monotonic() + 120.0
        while time.monotonic() < deadline:
            _, job = client.status(job_id)
            if job.get("state") in TERMINAL_STATES:
                break  # finished before we could kill; identity still holds
            _, page = client.events(job_id)
            if job.get("state") == "running" and page["next"] >= 1:
                killed_midrun = True
                break
            time.sleep(0.01)
        stale_address = (svc_dir / "service.json").read_text()
        chaos_server.kill()  # SIGKILL: no drain, no checkpointing grace
        chaos_server.wait(timeout=10.0)
    finally:
        _stop(chaos_server)

    # The job file says running/queued and the ledger holds a prefix of
    # the campaign — the crash left real recovery work behind.
    if killed_midrun:
        record = json.loads((svc_dir / f"{job_id}.job.json").read_text())
        assert record["state"] in ("queued", "running")
        assert len(parse_ledger(svc_dir / f"{job_id}.jsonl").blocks) >= 1

    clean_server = _spawn_server(svc_dir, "--workers", "2")
    try:
        client = _wait_for_service(svc_dir, clean_server, stale=stale_address)
        job = client.wait(job_id, timeout=240.0)
        assert job["state"] == "done"
        assert job["result"] == reference
        assert (parse_ledger(svc_dir / f"{job_id}.jsonl").blocks
                == parse_ledger(tmp_path / "ref.jsonl").blocks)
        code, health = client.healthz()
        assert health["fleet"]["alive"] == health["fleet"]["size"] == 2
    finally:
        _stop(clean_server)
    assert killed_midrun, "job finished before SIGKILL; increase chaos/shots"


def test_sigterm_drains_checkpoints_and_exits_130(tmp_path):
    server = _spawn_server(tmp_path, "--workers", "2",
                           "--chaos", "crash=0.5,seed=7",
                           "--max-attempts", "8",
                           "--retry-base-delay", "0.05")
    try:
        client = _wait_for_service(tmp_path, server)
        code, body = client.submit(MEM_PAYLOAD)
        assert code == 202
        job_id = body["id"]
        deadline = time.monotonic() + 60.0
        while time.monotonic() < deadline:
            _, job = client.status(job_id)
            if job.get("state") != "queued":
                break
            time.sleep(0.01)
        server.send_signal(signal.SIGTERM)
        assert server.wait(timeout=120.0) == 130
    finally:
        _stop(server)
    # The drain checkpointed: the job record is either interrupted
    # mid-run (requeued on restart) or already terminal — never lost.
    record = json.loads((tmp_path / f"{job_id}.job.json").read_text())
    assert record["state"] in ("interrupted", "queued", "done", "degraded")


# ---------------------------------------------------------------------------
# Directory-level ledger linting (satellite of the service: the service
# directory is a directory of ledgers)
# ---------------------------------------------------------------------------
class TestLedgerDirLint:
    def _good_ledger(self, directory, payload=MEM_PAYLOAD):
        spec = spec_from_payload(payload)
        key = run_key(spec)
        path = Path(directory) / f"{key}.jsonl"
        _reference_run(spec, path)
        return key, path

    def test_scan_ledgers_maps_run_keys_to_parses(self, tmp_path):
        key, _ = self._good_ledger(tmp_path)
        (tmp_path / "corrupt.jsonl").write_text("not json\n")
        scanned = scan_ledgers(tmp_path)
        assert set(scanned) == {key, "corrupt"}
        assert not isinstance(scanned[key], Exception)
        assert scanned[key].header["key"] == key
        assert isinstance(scanned["corrupt"], Exception)

    def test_lint_dir_reports_per_file_diagnostics(self, tmp_path):
        self._good_ledger(tmp_path)
        (tmp_path / "corrupt.jsonl").write_text("not json\n")
        report = lint_ledger_dir(tmp_path)
        assert report.checked["ledger_files"] == 2
        assert not report.ok
        assert any("corrupt.jsonl" in str(d) for d in report.errors)

    def test_lint_dir_flags_renamed_ledger_led008(self, tmp_path):
        key, path = self._good_ledger(tmp_path)
        path.rename(tmp_path / "renamed.jsonl")
        report = lint_ledger_dir(tmp_path)
        assert any(d.code == "LED008" for d in report.warnings)

    def test_lint_dir_missing_directory_is_led001(self, tmp_path):
        report = lint_ledger_dir(tmp_path / "nope")
        assert [d.code for d in report.errors] == ["LED001"]

    def test_cli_lints_a_service_directory(self, tmp_path):
        self._good_ledger(tmp_path)
        env = dict(os.environ)
        env["PYTHONPATH"] = str(Path(__file__).resolve().parents[1] / "src")
        clean = subprocess.run(
            [sys.executable, "-m", "repro", "lint", "--ledger-only",
             "--ledger", str(tmp_path), "--json"],
            env=env, capture_output=True, text=True,
        )
        assert clean.returncode == 0, clean.stdout + clean.stderr
        payload = json.loads(clean.stdout)
        assert payload["checked"]["ledger_files"] == 1
        (tmp_path / "corrupt.jsonl").write_text("not json\n")
        dirty = subprocess.run(
            [sys.executable, "-m", "repro", "lint", "--ledger-only",
             "--ledger", str(tmp_path), "--json"],
            env=env, capture_output=True, text=True,
        )
        assert dirty.returncode == 1
