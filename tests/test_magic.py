"""Tests for the magic-state distillation analysis (§VII)."""

import pytest

from repro.magic import (
    FAST_LATTICE,
    PROTOCOLS,
    SMALL_LATTICE,
    VQUBITS,
    FactoryProtocol,
    fifteen_to_one_program,
    generation_rate,
    patches_for_one_state_per_step,
    qubit_cost_table,
    speedup_over,
    vqubits_distillation_schedule,
)
from repro.magic.protocols import VQUBITS_SINGLE_TIMESTEPS


class TestFig13aRates:
    def test_rates_with_100_patches(self):
        # Fig. 13a bar heights.
        assert generation_rate(FAST_LATTICE, 100) == pytest.approx(100 / 180)
        assert generation_rate(SMALL_LATTICE, 100) == pytest.approx(100 / 121)
        assert generation_rate(VQUBITS, 100) == pytest.approx(100 / 99)

    def test_ordering(self):
        rates = [generation_rate(p, 100) for p in PROTOCOLS]
        assert rates == sorted(rates), "Fast < Small < VQubits"

    def test_paper_speedups(self):
        # §VII: "1.82x as many T-states as Fast Lattice and 1.22x as many
        # as Small Lattice".
        assert speedup_over(VQUBITS, SMALL_LATTICE) == pytest.approx(1.22, abs=0.005)
        assert speedup_over(VQUBITS, FAST_LATTICE) == pytest.approx(1.82, abs=0.005)


class TestFig13bSpace:
    def test_patches_for_one_per_step(self):
        assert patches_for_one_state_per_step(FAST_LATTICE) == pytest.approx(180)
        assert patches_for_one_state_per_step(SMALL_LATTICE) == pytest.approx(121)
        assert patches_for_one_state_per_step(VQUBITS) == pytest.approx(99)

    def test_vqubits_smallest(self):
        spaces = [patches_for_one_state_per_step(p) for p in PROTOCOLS]
        assert min(spaces) == patches_for_one_state_per_step(VQUBITS)


class TestTableII:
    def test_exact_paper_rows(self):
        rows = {c.protocol: c for c in qubit_cost_table(distance=5, cavity_modes=10)}
        assert rows["Fast Lattice"].transmons == 1499
        assert rows["Fast Lattice"].total == 1499
        assert rows["Small Lattice"].transmons == 549
        assert rows["VQubits (natural)"].transmons == 49
        assert rows["VQubits (natural)"].cavities == 25
        assert rows["VQubits (natural)"].total == 299
        assert rows["VQubits (compact)"].transmons == 29
        assert rows["VQubits (compact)"].total == 279

    def test_row_rendering(self):
        row = qubit_cost_table()[0].row()
        assert row[0] == "Fast Lattice" and row[2] == "-"


class TestProtocolModel:
    def test_paper_timestep_constants(self):
        assert VQUBITS_SINGLE_TIMESTEPS == 110
        assert VQUBITS.timesteps_per_batch == 99
        assert FAST_LATTICE.timesteps_per_batch == 6
        assert SMALL_LATTICE.patches_per_block == 11

    def test_validation(self):
        with pytest.raises(ValueError):
            FactoryProtocol("bad", 0, 1)
        with pytest.raises(ValueError):
            generation_rate(VQUBITS, 0)


class TestDistillationCircuit:
    def test_paper_gate_accounting(self):
        # §VII counts a steady-state batch: "16 qubit initializations, 15
        # measurements, 35 CNOT gates and a few other operations".  Our
        # explicit single-shot circuit additionally (re-)initializes the
        # four persistent code qubits and reads them out at the end, and
        # spends one extra CNOT on the encode — hence 20/19/36.
        program = fifteen_to_one_program()
        allocs = sum(1 for op in program.ops if op.name == "ALLOC")
        measures = sum(1 for op in program.ops if op.name.startswith("MEASURE"))
        assert allocs == 20  # paper's 16 = 1 output + 15 resources
        assert measures == 19  # paper's 15 = resource measurements only
        assert program.cnot_count() == 36  # paper's 35 + 1 encode CNOT

    def test_six_live_logical_qubits(self):
        # The paper: one patch with 6 logical qubits in the cavities.  The
        # 15 resources stream through; peak residency is bounded.
        schedule = vqubits_distillation_schedule()
        assert schedule.refresh_violations == 0

    def test_single_stack_is_all_transversal(self):
        schedule = vqubits_distillation_schedule(lock_step_pairs=False)
        assert schedule.transversal_fraction == pytest.approx(1.0)
        assert schedule.cnots == 36

    def test_compiled_timesteps_same_order_as_paper(self):
        # Our compiler's schedule vs the paper's 110: same order of
        # magnitude (the exact 110 depends on the authors' unpublished
        # micro-schedule; EXPERIMENTS.md records both).
        schedule = vqubits_distillation_schedule()
        assert 40 <= schedule.timesteps <= 200
