"""Tests for the Aaronson–Gottesman tableau simulator."""

import pytest

from repro.circuits import Circuit
from repro.pauli import PauliString
from repro.stabilizer import TableauSimulator


class TestBasics:
    def test_initial_state_measures_zero(self):
        sim = TableauSimulator(3, seed=0)
        assert [sim.measure(q) for q in range(3)] == [0, 0, 0]

    def test_x_flips_measurement(self):
        sim = TableauSimulator(1, seed=0)
        sim.gate_x(0)
        assert sim.measure(0) == 1

    def test_h_then_h_is_identity(self):
        sim = TableauSimulator(1, seed=0)
        sim.h(0)
        sim.h(0)
        assert sim.measure(0) == 0

    def test_random_measurement_collapses(self):
        sim = TableauSimulator(1, seed=1)
        sim.h(0)
        first = sim.measure(0)
        assert sim.measure(0) == first

    def test_bell_pair_correlation(self):
        for seed in range(10):
            sim = TableauSimulator(2, seed=seed)
            sim.h(0)
            sim.cx(0, 1)
            assert sim.measure(0) == sim.measure(1)

    def test_ghz_correlation(self):
        for seed in range(5):
            sim = TableauSimulator(3, seed=seed)
            sim.h(0)
            sim.cx(0, 1)
            sim.cx(1, 2)
            outcomes = [sim.measure(q) for q in range(3)]
            assert len(set(outcomes)) == 1

    def test_s_gate_phases(self):
        # S X S† = Y.
        sim = TableauSimulator(1, seed=0)
        sim.h(0)  # |+>, stabilized by X
        sim.s(0)  # now stabilized by Y
        assert sim.peek_pauli_expectation(PauliString.from_string("Y")) == 1

    def test_s_dag_inverts_s(self):
        sim = TableauSimulator(1, seed=0)
        sim.h(0)
        sim.s(0)
        sim.s_dag(0)
        assert sim.peek_pauli_expectation(PauliString.from_string("X")) == 1

    def test_cz_makes_bell_in_x_basis(self):
        sim = TableauSimulator(2, seed=0)
        sim.h(0)
        sim.h(1)
        sim.cz(0, 1)
        # State stabilized by X⊗Z and Z⊗X.
        assert sim.peek_pauli_expectation(PauliString.from_string("XZ")) == 1
        assert sim.peek_pauli_expectation(PauliString.from_string("ZX")) == 1

    def test_swap(self):
        sim = TableauSimulator(2, seed=0)
        sim.gate_x(0)
        sim.swap(0, 1)
        assert sim.measure(0) == 0
        assert sim.measure(1) == 1

    def test_reset(self):
        sim = TableauSimulator(1, seed=0)
        sim.gate_x(0)
        sim.reset(0)
        assert sim.measure(0) == 0

    def test_reset_of_superposition(self):
        for seed in range(5):
            sim = TableauSimulator(1, seed=seed)
            sim.h(0)
            sim.reset(0)
            assert sim.measure(0) == 0


class TestMeasurePauli:
    def test_measure_zz_on_bell(self):
        sim = TableauSimulator(2, seed=0)
        sim.h(0)
        sim.cx(0, 1)
        assert sim.measure_pauli(PauliString.from_string("ZZ")) == 0
        assert sim.measure_pauli(PauliString.from_string("XX")) == 0

    def test_measure_negative_pauli(self):
        sim = TableauSimulator(1, seed=0)
        sim.gate_x(0)  # |1>, stabilized by -Z
        assert sim.measure_pauli(PauliString.from_string("Z", -1)) == 0
        assert sim.measure_pauli(PauliString.from_string("Z")) == 1

    def test_measure_non_hermitian_rejected(self):
        sim = TableauSimulator(1, seed=0)
        with pytest.raises(ValueError):
            sim.measure_pauli(PauliString.from_string("Z", 1j))

    def test_forced_outcome(self):
        sim = TableauSimulator(1, seed=0)
        assert sim.measure_pauli(PauliString.from_string("X"), forced_outcome=1) == 1
        assert sim.peek_pauli_expectation(PauliString.from_string("X")) == -1

    def test_joint_measurement_projects(self):
        # Measuring X⊗X on |00> then Z⊗Z must still give +1 (Bell state).
        for forced in (0, 1):
            sim = TableauSimulator(2, seed=0)
            m = sim.measure_pauli(PauliString.from_string("XX"), forced_outcome=forced)
            assert m == forced
            assert sim.measure_pauli(PauliString.from_string("ZZ")) == 0

    def test_repeated_pauli_measurement_is_stable(self):
        sim = TableauSimulator(3, seed=3)
        p = PauliString.from_string("XXI")
        first = sim.measure_pauli(p)
        for _ in range(3):
            assert sim.measure_pauli(p) == first

    def test_measure_y(self):
        sim = TableauSimulator(1, seed=0)
        sim.h(0)
        sim.s(0)  # +1 eigenstate of Y
        assert sim.measure_pauli(PauliString.from_string("Y")) == 0

    def test_identity_measurement(self):
        sim = TableauSimulator(1, seed=0)
        assert sim.measure_pauli(PauliString.identity(1)) == 0


class TestPeek:
    def test_peek_deterministic(self):
        sim = TableauSimulator(1, seed=0)
        assert sim.peek_pauli_expectation(PauliString.from_string("Z")) == 1
        sim.gate_x(0)
        assert sim.peek_pauli_expectation(PauliString.from_string("Z")) == -1

    def test_peek_random_returns_zero(self):
        sim = TableauSimulator(1, seed=0)
        assert sim.peek_pauli_expectation(PauliString.from_string("X")) == 0

    def test_peek_does_not_collapse(self):
        sim = TableauSimulator(1, seed=0)
        sim.h(0)
        assert sim.peek_pauli_expectation(PauliString.from_string("Z")) == 0
        assert sim.peek_pauli_expectation(PauliString.from_string("X")) == 1


class TestStabilizers:
    def test_initial_stabilizers(self):
        sim = TableauSimulator(2, seed=0)
        letters = sorted(s.letters() for s in sim.stabilizers())
        assert letters == ["IZ", "ZI"]

    def test_bell_canonical_form(self):
        sim = TableauSimulator(2, seed=0)
        sim.h(0)
        sim.cx(0, 1)
        canonical = {str(s) for s in sim.canonical_stabilizers()}
        assert canonical == {"+XX", "+ZZ"}

    def test_canonical_form_is_state_fingerprint(self):
        # Two different circuits preparing the same state agree.
        a = TableauSimulator(2, seed=0)
        a.h(0)
        a.cx(0, 1)
        b = TableauSimulator(2, seed=0)
        b.h(1)
        b.cx(1, 0)
        assert [str(s) for s in a.canonical_stabilizers()] == [
            str(s) for s in b.canonical_stabilizers()
        ]

    def test_apply_pauli_flips_signs(self):
        sim = TableauSimulator(1, seed=0)
        sim.apply_pauli(PauliString.from_string("X"))
        assert sim.peek_pauli_expectation(PauliString.from_string("Z")) == -1


class TestRunCircuit:
    def test_run_records_measurements(self):
        c = Circuit()
        c.h(0)
        c.cx(0, 1)
        c.measure(0, 1)
        for seed in range(5):
            sim = TableauSimulator(2, seed=seed)
            record = sim.run(c)
            assert record[0] == record[1]

    def test_run_with_forced_noise(self):
        c = Circuit()
        c.x_error([0], 1.0)
        c.measure(0)
        sim = TableauSimulator(1, seed=0)
        assert sim.run(c) == [1]

    def test_run_measurement_flip(self):
        c = Circuit()
        c.measure(0, flip_probability=1.0)
        sim = TableauSimulator(1, seed=0)
        assert sim.run(c) == [1]
        # State itself was unaffected.
        assert sim.measure(0) == 0

    def test_copy_independent(self):
        sim = TableauSimulator(1, seed=0)
        clone = sim.copy()
        clone.gate_x(0)
        assert sim.measure(0) == 0
        assert clone.measure(0) == 1
