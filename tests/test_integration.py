"""Cross-module integration tests.

These exercise complete user-facing paths: circuit builder → DEM → decoder
→ Monte-Carlo estimate, compiler → exact execution, and the distance
scaling the whole stack exists to demonstrate.
"""


from repro import (
    ErrorModel,
    BASELINE_HARDWARE,
    MEMORY_HARDWARE,
    baseline_memory_circuit,
    compact_memory_circuit,
    natural_memory_circuit,
    run_memory_experiment,
)
from repro.sim import sample_detection_data


class TestDistanceScaling:
    def test_below_threshold_distance_helps(self):
        # The fundamental promise of error correction, end to end.
        model = ErrorModel(hardware=BASELINE_HARDWARE, p=1.5e-3)
        rates = {}
        for d in (3, 5):
            memory = baseline_memory_circuit(d, model)
            rates[d] = run_memory_experiment(memory, shots=3000, seed=4).logical_error_rate
        assert rates[5] < rates[3] + 0.002

    def test_above_threshold_distance_hurts(self):
        model = ErrorModel(hardware=BASELINE_HARDWARE, p=2.5e-2)
        rates = {}
        for d in (3, 5):
            memory = baseline_memory_circuit(d, model)
            rates[d] = run_memory_experiment(memory, shots=1500, seed=4).logical_error_rate
        assert rates[5] > rates[3]


class TestSchemeOrdering:
    def test_memory_architectures_pay_a_bounded_penalty(self):
        # §I: "fault-tolerance and performance comparable to conventional
        # 2D transmon-only architectures" — at the operating point the
        # 2.5D variants are worse than baseline (they add load/store and
        # serialization noise) but by a bounded factor, not a collapse.
        p = 2e-3
        baseline = run_memory_experiment(
            baseline_memory_circuit(3, ErrorModel(hardware=BASELINE_HARDWARE, p=p)),
            shots=3000,
            seed=9,
        ).logical_error_rate
        memory_model = ErrorModel(hardware=MEMORY_HARDWARE, p=p)
        natural = run_memory_experiment(
            natural_memory_circuit(3, memory_model, schedule="all_at_once"),
            shots=3000,
            seed=9,
        ).logical_error_rate
        assert natural < 1.0
        assert natural >= baseline * 0.5  # sanity: same decade or worse
        assert natural <= max(20 * baseline, 0.35)

    def test_both_bases_decodable(self):
        model = ErrorModel(hardware=MEMORY_HARDWARE, p=2e-3)
        for basis in ("Z", "X"):
            memory = compact_memory_circuit(3, model, basis=basis)
            result = run_memory_experiment(memory, shots=400, seed=2)
            assert 0.0 <= result.logical_error_rate < 0.6

    def test_zero_noise_means_zero_logical_errors(self):
        model = ErrorModel(
            hardware=MEMORY_HARDWARE,
            p=0.0,
            scale_coherence=False,
            t1_transmon_override=float("inf"),
            t1_cavity_override=float("inf"),
        )
        for build in (natural_memory_circuit, compact_memory_circuit):
            memory = build(3, model)
            result = run_memory_experiment(memory, shots=64, seed=0)
            assert result.logical_errors == 0


class TestDeterminism:
    def test_seeded_runs_reproduce(self):
        model = ErrorModel(hardware=BASELINE_HARDWARE, p=5e-3)
        memory = baseline_memory_circuit(3, model)
        a = run_memory_experiment(memory, shots=500, seed=7)
        b = run_memory_experiment(memory, shots=500, seed=7)
        assert a.logical_errors == b.logical_errors

    def test_different_seeds_differ(self):
        model = ErrorModel(hardware=BASELINE_HARDWARE, p=8e-3)
        memory = baseline_memory_circuit(3, model)
        data_a = sample_detection_data(memory.circuit, shots=200, seed=1)
        data_b = sample_detection_data(memory.circuit, shots=200, seed=2)
        assert (data_a.detectors != data_b.detectors).any()


class TestResultObject:
    def test_string_rendering(self):
        model = ErrorModel(hardware=BASELINE_HARDWARE, p=5e-3)
        memory = baseline_memory_circuit(3, model)
        result = run_memory_experiment(memory, shots=200, seed=1)
        text = str(result)
        assert "baseline" in text and "d=3" in text

    def test_interval_brackets_rate(self):
        model = ErrorModel(hardware=BASELINE_HARDWARE, p=8e-3)
        memory = baseline_memory_circuit(3, model)
        result = run_memory_experiment(memory, shots=500, seed=1)
        low, high = result.confidence_interval
        assert low <= result.logical_error_rate <= high
