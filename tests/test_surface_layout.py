"""Tests for the rotated surface code layout."""

import pytest

from repro.pauli import PauliString
from repro.surface_code import RotatedSurfaceCode


@pytest.fixture(params=[2, 3, 5, 7])
def code(request):
    return RotatedSurfaceCode(request.param)


class TestCounts:
    def test_data_count(self, code):
        assert code.num_data == code.distance**2
        assert len(code.data_coords) == code.num_data

    def test_ancilla_count(self, code):
        assert code.num_ancilla == code.distance**2 - 1

    def test_balanced_bases(self, code):
        x = code.plaquettes_of_basis("X")
        z = code.plaquettes_of_basis("Z")
        if code.distance % 2 == 1:
            assert len(x) == len(z) == (code.distance**2 - 1) // 2
        else:
            # Even distances are lopsided by one plaquette.
            assert len(x) + len(z) == code.distance**2 - 1
            assert abs(len(x) - len(z)) == 1

    def test_boundary_counts(self, code):
        d = code.distance
        halves = [p for p in code.plaquettes if p.is_boundary]
        assert len(halves) == 2 * (d - 1)

    def test_d3_matches_paper_figure(self):
        # Fig. 2: four logical qubits each with 9 data and 8 ancilla.
        code = RotatedSurfaceCode(3)
        assert code.num_data == 9
        assert code.num_ancilla == 8


class TestStructure:
    def test_interior_data_touches_two_of_each(self, code):
        d = code.distance
        touching = {coord: {"X": 0, "Z": 0} for coord in code.data_coords}
        for p in code.plaquettes:
            for coord in p.data:
                touching[coord][p.basis] += 1
        for (r, c), counts in touching.items():
            if 0 < r < d - 1 and 0 < c < d - 1:
                assert counts == {"X": 2, "Z": 2}, (r, c)

    def test_every_data_in_some_plaquette(self, code):
        covered = {coord for p in code.plaquettes for coord in p.data}
        assert covered == set(code.data_coords)

    def test_x_half_plaquettes_on_top_bottom(self, code):
        d = code.distance
        for p in code.plaquettes_of_basis("X"):
            if p.is_boundary:
                assert p.cell[0] in (-1, d - 1)

    def test_z_half_plaquettes_on_left_right(self, code):
        d = code.distance
        for p in code.plaquettes_of_basis("Z"):
            if p.is_boundary:
                assert p.cell[1] in (-1, d - 1)

    def test_corner_lookup(self):
        code = RotatedSurfaceCode(3)
        p = next(p for p in code.plaquettes if p.cell == (0, 0))
        assert p.corner("NW") == (0, 0)
        assert p.corner("SE") == (1, 1)


class TestLogicalOperators:
    def test_stabilizers_mutually_commute(self, code):
        paulis = [code.stabilizer_pauli(p) for p in code.plaquettes]
        for i, a in enumerate(paulis):
            for b in paulis[i + 1 :]:
                assert a.commutes_with(b)

    def test_logicals_commute_with_stabilizers(self, code):
        lx, lz = code.logical_x(), code.logical_z()
        for p in code.plaquettes:
            s = code.stabilizer_pauli(p)
            assert lx.commutes_with(s), f"X_L anticommutes with {p}"
            assert lz.commutes_with(s), f"Z_L anticommutes with {p}"

    def test_logicals_anticommute_with_each_other(self, code):
        assert not code.logical_x().commutes_with(code.logical_z())

    def test_logical_weight_is_distance(self, code):
        assert code.logical_x().weight == code.distance
        assert code.logical_z().weight == code.distance

    def test_logical_not_in_stabilizer_group(self):
        # Brute force for d=3: no product of stabilizers equals Z_L.
        code = RotatedSurfaceCode(3)
        stabs = [code.stabilizer_pauli(p) for p in code.plaquettes]
        lz = code.logical_z()
        n = len(stabs)
        for mask in range(1, 2**n):
            prod = PauliString.identity(code.num_data)
            for i in range(n):
                if mask >> i & 1:
                    prod = prod * stabs[i]
            assert (prod.xs != lz.xs).any() or (prod.zs != lz.zs).any()


class TestMisc:
    def test_rejects_tiny_distance(self):
        with pytest.raises(ValueError):
            RotatedSurfaceCode(1)

    def test_ascii_diagram_has_content(self):
        art = RotatedSurfaceCode(3).ascii_diagram()
        assert "." in art and ("X" in art or "x" in art)

    def test_data_index_roundtrip(self, code):
        for i, coord in enumerate(code.data_coords):
            assert code.data_index(coord) == i
