"""Tests for threshold estimation and sensitivity machinery."""


import pytest

from repro.noise import BASELINE_HARDWARE, ErrorModel
from repro.sim import LogicalErrorResult
from repro.threshold import (
    SCHEMES,
    ThresholdStudy,
    build_memory_circuit,
    estimate_threshold,
    run_sensitivity_panel,
)
from repro.threshold.estimator import _crossing


def synthetic_study(rates_by_distance, ps, distances=(3, 5)):
    study = ThresholdStudy(
        scheme="synthetic",
        basis="Z",
        physical_error_rates=list(ps),
        distances=list(distances),
    )
    for d, rates in rates_by_distance.items():
        study.results[d] = [
            LogicalErrorResult(
                scheme="synthetic",
                basis="Z",
                distance=d,
                rounds=d,
                shots=10_000,
                logical_errors=int(round(rate * 10_000)),
                undetectable_probability=0.0,
                decoder="unionfind",
            )
            for rate in rates
        ]
    return study


class TestCrossing:
    def test_exact_crossing(self):
        ps = [1e-3, 1e-2]
        # d=3 line above d=5 at low p, below at high p -> crossing inside.
        crossing = _crossing(ps, [1e-4, 1e-1], [1e-5, 3e-1], min_rate=1e-9)
        assert crossing is not None
        assert ps[0] < crossing < ps[1]

    def test_no_crossing(self):
        ps = [1e-3, 1e-2]
        assert _crossing(ps, [1e-2, 1e-1], [1e-3, 1e-2], min_rate=1e-9) is None

    def test_crossing_at_grid_point(self):
        ps = [1e-3, 1e-2]
        crossing = _crossing(ps, [1e-3, 1e-1], [1e-3, 2e-1], min_rate=1e-9)
        assert crossing == pytest.approx(1e-3)

    def test_no_spurious_crossing_when_both_curves_clamped(self):
        # Zero observed errors on both curves at low p clamps both rates
        # to min_rate, making the gap vacuously zero — previously reported
        # as a crossing at ps[0] even though the curves never cross.
        ps = [1e-3, 4e-3, 8e-3]
        crossing = _crossing(
            ps, [0.0, 1e-2, 2e-2], [0.0, 1e-3, 2e-3], min_rate=1e-4
        )
        assert crossing is None

    def test_real_crossing_survives_clamped_low_p_point(self):
        ps = [1e-3, 4e-3, 8e-3]
        # Both curves clamped at ps[0]; genuine crossing in (ps[1], ps[2]).
        crossing = _crossing(
            ps, [0.0, 1e-3, 1e-1], [0.0, 1e-4, 3e-1], min_rate=1e-5
        )
        assert crossing is not None
        assert ps[1] < crossing < ps[2]

    def test_clamped_grid_point_cannot_anchor_interpolation(self):
        # The sign-change branch must also ignore intervals whose endpoint
        # is doubly-clamped (g1 == 0 vacuously would snap to ps[1]).
        ps = [1e-3, 4e-3]
        crossing = _crossing(ps, [1e-2, 0.0], [1e-3, 0.0], min_rate=1e-4)
        assert crossing is None


class TestThresholdStudy:
    def test_threshold_estimate_from_synthetic_data(self):
        ps = [4e-3, 6e-3, 9e-3, 1.3e-2]
        study = synthetic_study(
            {3: [2e-2, 5e-2, 1.1e-1, 2.0e-1], 5: [8e-3, 3.5e-2, 1.6e-1, 3.5e-1]},
            ps,
        )
        threshold = study.threshold_estimate()
        assert threshold is not None
        assert 6e-3 < threshold < 9e-3

    def test_no_crossing_returns_none(self):
        ps = [1e-3, 2e-3]
        study = synthetic_study({3: [1e-2, 2e-2], 5: [1e-3, 2e-3]}, ps)
        assert study.threshold_estimate() is None

    def test_rows_shape(self):
        ps = [1e-3, 2e-3]
        study = synthetic_study({3: [0.1, 0.2], 5: [0.05, 0.3]}, ps)
        rows = study.rows()
        assert len(rows) == 2
        assert rows[0] == (1e-3, 0.1, 0.05)

    def test_rows_follow_caller_distance_order(self):
        # Columns must match self.distances (what a caller builds headers
        # from), not sorted(results) — these diverged for unsorted input.
        ps = [1e-3, 2e-3]
        study = synthetic_study(
            {3: [0.1, 0.2], 5: [0.05, 0.3]}, ps, distances=[5, 3]
        )
        assert study.rows()[0] == (1e-3, 0.05, 0.1)

    def test_threshold_estimate_invariant_to_distance_order(self):
        ps = [4e-3, 6e-3, 9e-3, 1.3e-2]
        rates = {
            3: [2e-2, 5e-2, 1.1e-1, 2.0e-1],
            5: [8e-3, 3.5e-2, 1.6e-1, 3.5e-1],
            7: [3e-3, 2.5e-2, 2.1e-1, 4.5e-1],
        }
        reference = synthetic_study(rates, ps, distances=[3, 5, 7]).threshold_estimate()
        assert reference is not None
        # Three distances catch wrong pairing (e.g. (5,3),(3,7)) that a
        # two-distance reversal cannot: pairs must always be the
        # numerically consecutive (3,5),(5,7).
        for order in ([5, 3, 7], [7, 5, 3], [7, 3, 5]):
            shuffled = synthetic_study(rates, ps, distances=order)
            assert shuffled.threshold_estimate() == pytest.approx(reference)

    def test_mismatched_results_keys_rejected(self):
        ps = [1e-3, 2e-3]
        study = synthetic_study({3: [0.1, 0.2]}, ps, distances=[3, 5])
        with pytest.raises(ValueError):
            study.rows()
        with pytest.raises(ValueError):
            study.threshold_estimate()


class TestBuildDispatch:
    def test_all_schemes_build(self):
        for scheme in SCHEMES:
            from repro.threshold.estimator import default_hardware_for

            model = ErrorModel(hardware=default_hardware_for(scheme), p=1e-3)
            memory = build_memory_circuit(scheme, 3, model)
            assert memory.scheme == scheme
            assert memory.circuit.num_detectors > 0

    def test_unknown_scheme(self):
        model = ErrorModel(hardware=BASELINE_HARDWARE, p=1e-3)
        with pytest.raises(ValueError):
            build_memory_circuit("square_dance", 3, model)


class TestEndToEnd:
    def test_small_threshold_sweep_shows_scaling(self):
        # Below threshold d=5 must beat d=3; way above, the reverse.
        study = estimate_threshold(
            "baseline",
            physical_error_rates=[1.5e-3, 2e-2],
            distances=[3, 5],
            shots=600,
            seed=3,
        )
        low_d3, low_d5 = study.logical_rates(3)[0], study.logical_rates(5)[0]
        high_d3, high_d5 = study.logical_rates(3)[1], study.logical_rates(5)[1]
        assert low_d5 <= low_d3 + 0.02
        assert high_d5 > high_d3

    def test_sensitivity_panel_monotone_in_gate_error(self):
        panel = run_sensitivity_panel(
            "sc_sc_error",
            distances=[3],
            xs=[1e-4, 8e-3],
            shots=400,
            seed=11,
        )
        rates = panel.rates[3]
        assert rates[1] > rates[0]

    def test_sensitivity_rejects_unknown_panel(self):
        with pytest.raises(ValueError):
            run_sensitivity_panel("wavelength", distances=[3], shots=10)

    def test_cavity_size_panel_builds(self):
        panel = run_sensitivity_panel(
            "cavity_size", distances=[3], xs=[5.0, 20.0], shots=200, seed=5
        )
        assert len(panel.rates[3]) == 2

    def test_threshold_study_exposes_decode_stats(self):
        from repro.decoders import TIER_NAMES

        study = estimate_threshold(
            "baseline",
            physical_error_rates=[2e-3, 5e-3],
            distances=[3],
            shots=400,
            seed=9,
        )
        stats = study.decode_stats
        assert stats["shots"] == 2 * 400
        assert sum(stats[t] for t in TIER_NAMES) == stats["unique"]
        # per-point stats ride on each result and sum to the aggregate
        per_point = [r.decode_stats for row in study.results.values() for r in row]
        assert sum(s["unique"] for s in per_point) == stats["unique"]
        for s in per_point:
            assert sum(s[t] for t in TIER_NAMES) == s["unique"]

    def test_sensitivity_panel_exposes_decode_stats(self):
        from repro.decoders import TIER_NAMES

        panel = run_sensitivity_panel(
            "sc_sc_error", distances=[3], xs=[1e-3, 4e-3], shots=300, seed=2
        )
        stats = panel.decode_stats
        assert stats["shots"] == 2 * 300
        assert sum(stats[t] for t in TIER_NAMES) == stats["unique"]
