"""Tests for the program-level noisy Monte-Carlo pipeline (repro.vlq).

Three layers are covered:

* **timelines** — the compiler's per-qubit residence/refresh API that
  the lowering consumes (and the refresh audit now replays against);
* **lowering** — per-qubit timelines become noisy circuits whose
  noiseless versions are deterministic on the exact stabilizer
  simulator (detectors AND observable), for both embeddings and bases;
* **campaign** — the multi-circuit engine run: bit-identical across
  worker counts, shape caches actually hit, tier accounting balances,
  packed and reference backends agree statistically.
"""

import pytest

from repro.core import LogicalProgram, Machine, compile_program
from repro.decoders import TIER_NAMES, BuildCache
from repro.noise import MEMORY_HARDWARE, ErrorModel
from repro.vlq import (
    LoweringSpec,
    build_program,
    compare_architectures,
    lower_timeline,
    run_program_experiment,
    timeline_shape,
)


def _machine(embedding="compact", grid=(2, 2), modes=10, distance=3):
    return Machine(
        stack_grid=grid, cavity_modes=modes, distance=distance, embedding=embedding
    )


def _model(p=2e-3):
    return ErrorModel(hardware=MEMORY_HARDWARE, p=p, scale_coherence=False)


def _clustered_program():
    """Three co-located qubits; a CNOT burst on two starves the third.

    The stored bystander (q2) accumulates refresh debt, so the compiler
    inserts REFRESH breaks and q2's timeline carries background refresh
    rounds — the interesting case for the DRAM-vs-none ablation.
    """
    program = LogicalProgram()
    program.alloc(0, 1, 2)
    for _ in range(6):
        program.cnot(0, 1)
    return program


class TestTimelines:
    def test_residences_cover_alloc_to_end(self):
        schedule = compile_program(LogicalProgram.bell_pairs(4), _machine())
        for q, timeline in schedule.qubit_timelines().items():
            assert timeline.ops[0].name == "ALLOC"
            first = timeline.residences[0]
            assert first.start == timeline.ops[0].end
            assert timeline.residences[-1].end == schedule.total_timesteps
            # contiguity: each interval starts where the previous ended
            for a, b in zip(timeline.residences, timeline.residences[1:]):
                assert b.start == a.end

    def test_stack_at_matches_residences(self):
        schedule = compile_program(LogicalProgram.bell_pairs(4), _machine())
        timeline = schedule.qubit_timeline(0)
        interval = timeline.residences[0]
        assert timeline.stack_at(interval.start) == interval.stack
        assert timeline.stack_at(interval.start - 1) is None

    def test_measured_qubit_residence_ends_at_measure(self):
        program = LogicalProgram().alloc(0, 1).cnot(0, 1).measure_z(0)
        schedule = compile_program(program, _machine())
        timeline = schedule.qubit_timeline(0)
        assert timeline.measured
        measure = [e for e in timeline.ops if e.name == "MEASURE_Z"][0]
        assert timeline.residences[-1].end == measure.end
        # segments stop before the measure window (readout is appended
        # by the lowering)
        for segment in timeline.segments():
            assert segment[0] in ("rounds", "idle", "refresh")

    def test_moved_qubit_has_two_residences(self):
        # Tiny capacity forces the qubits onto different stacks and the
        # CNOT onto the move-then-transversal path.
        program = LogicalProgram().alloc(0, 1).cnot(0, 1)
        machine = _machine(grid=(2, 1), modes=2)
        schedule = compile_program(program, machine)
        assert schedule.cnot_with_move == 1
        timeline = schedule.qubit_timeline(0)
        assert len(timeline.residences) == 2
        assert timeline.residences[0].stack != timeline.residences[1].stack

    def test_refresh_times_recorded_for_starved_resident(self):
        schedule = compile_program(_clustered_program(), _machine(grid=(1, 1), modes=6))
        assert schedule.refresh_violations == 0
        assert schedule.refresh_times[2], "stored bystander must get refresh rounds"
        assert any(
            s[0] == "refresh" for s in schedule.qubit_timeline(2).segments()
        )
        # the no-refresh view folds them back into idle windows
        ablated = schedule.qubit_timeline(2).segments(include_refreshes=False)
        assert all(s[0] != "refresh" for s in ablated)

    def test_segments_merge_adjacent_op_windows(self):
        program = LogicalProgram().alloc(0, 1)
        program.cnot(0, 1).cnot(0, 1)  # back-to-back, no gap
        schedule = compile_program(program, _machine(grid=(1, 1)))
        segments = schedule.qubit_timeline(0).segments()
        kinds = [s[0] for s in segments]
        assert ("rounds", "rounds") not in zip(kinds, kinds[1:])
        # ALLOC(1) + idle(1 step while q1 allocates) + CNOT+CNOT merged
        assert ("rounds", 2) in segments

    def test_segment_durations_sum_to_lifetime(self):
        schedule = compile_program(LogicalProgram.bell_pairs(4), _machine())
        for q, timeline in schedule.qubit_timelines().items():
            total = 0
            for segment in timeline.segments():
                total += segment[1] if segment[0] in ("rounds", "idle") else 1
            assert total == schedule.total_timesteps - timeline.ops[0].start


class TestLowering:
    @pytest.mark.parametrize("embedding", ["natural", "compact"])
    @pytest.mark.parametrize("basis", ["Z", "X"])
    def test_noiseless_lowering_is_deterministic(self, embedding, basis):
        """Detectors and observable must be deterministic without noise —
        the exact-simulator certificate that rounds, refreshes, idles and
        readout compose into a valid memory experiment."""
        from repro.stabilizer import TableauSimulator

        schedule = compile_program(_clustered_program(), _machine(grid=(1, 1), modes=6))
        spec = LoweringSpec(distance=3, embedding=embedding, basis=basis)
        model = ErrorModel(hardware=MEMORY_HARDWARE, p=0.0, scale_coherence=False)
        for q in (0, 2):  # an operand and the refresh-serviced bystander
            memory = lower_timeline(schedule.qubit_timeline(q), model, spec)
            clean = memory.circuit.without_noise()
            for seed in range(2):
                record = TableauSimulator(clean.num_qubits, seed=seed).run(clean)
                for det in clean.detectors:
                    value = 0
                    for m in det.measurements:
                        value ^= record[m]
                    assert value == 0, (q, det.coord)
                for obs in clean.observables:
                    value = 0
                    for m in obs.measurements:
                        value ^= record[m]
                    assert value == 0, q

    def test_refresh_rounds_lower_into_circuit(self):
        schedule = compile_program(_clustered_program(), _machine(grid=(1, 1), modes=6))
        timeline = schedule.qubit_timeline(2)
        with_refresh = lower_timeline(
            timeline, _model(), LoweringSpec(3, "natural", refresh=True)
        )
        without = lower_timeline(
            timeline, _model(), LoweringSpec(3, "natural", refresh=False)
        )
        assert with_refresh.rounds == len(timeline.refreshes) + without.rounds

    def test_shape_key_identifies_identical_timelines(self):
        schedule = compile_program(LogicalProgram.bell_pairs(4), _machine())
        spec = LoweringSpec(3, "compact")
        shapes = [
            timeline_shape(schedule.qubit_timeline(q), spec) for q in range(4)
        ]
        assert shapes[0] == shapes[2] and shapes[1] == shapes[3]
        assert shapes[0] != shapes[1]

    def test_rejects_baseline_hardware(self):
        from repro.noise import BASELINE_HARDWARE

        schedule = compile_program(LogicalProgram.bell_pairs(2), _machine(grid=(1, 1)))
        model = ErrorModel(hardware=BASELINE_HARDWARE, p=1e-3)
        with pytest.raises(ValueError, match="memory hardware"):
            lower_timeline(schedule.qubit_timeline(0), model, LoweringSpec(3, "natural"))

    def test_spec_validation(self):
        with pytest.raises(ValueError):
            LoweringSpec(3, "diagonal")
        with pytest.raises(ValueError):
            LoweringSpec(3, "compact", basis="Y")
        with pytest.raises(ValueError):
            LoweringSpec(3, "compact", rounds_per_timestep=0)


class TestCampaign:
    SHOTS = 2100  # two full engine blocks plus a remainder

    def test_workers_do_not_change_counts(self):
        """Acceptance: bit-identical across --workers 1 and --workers 4."""
        program = LogicalProgram.bell_pairs(4)
        machine = _machine()
        reference = run_program_experiment(
            program, machine, shots=self.SHOTS, seed=7, chunk_size=1024
        )
        sharded = run_program_experiment(
            program, machine, shots=self.SHOTS, seed=7, chunk_size=1024, workers=4
        )
        for a, b in zip(reference.per_qubit, sharded.per_qubit):
            assert a.result == b.result, a.qubit
        assert reference.program_error_rate == sharded.program_error_rate

    def test_backends_agree_statistically(self):
        """Acceptance: the reference backend stays selectable as oracle."""
        program = LogicalProgram.bell_pairs(2)
        machine = _machine(grid=(1, 1))
        packed = run_program_experiment(
            program, machine, shots=4096, seed=5, backend="packed"
        )
        reference = run_program_experiment(
            program, machine, shots=4096, seed=5, backend="reference"
        )
        for a, b in zip(packed.per_qubit, reference.per_qubit):
            assert abs(a.result.logical_errors - b.result.logical_errors) <= max(
                12, 0.75 * b.result.logical_errors
            ), (a.qubit, a.result.logical_errors, b.result.logical_errors)

    def test_shape_caches_hit_on_symmetric_program(self):
        lowering = BuildCache("lowering")
        graphs = BuildCache("graphs")
        run_program_experiment(
            LogicalProgram.bell_pairs(4),
            _machine(),
            shots=256,
            lowering_cache=lowering,
            graph_cache=graphs,
        )
        assert lowering.hits > 0 and lowering.misses == 2
        assert graphs.hits > 0 and graphs.misses == 2

    def test_tier_accounting_balances(self):
        result = run_program_experiment(
            LogicalProgram.bell_pairs(4), _machine(), shots=512
        )
        stats = result.decode_stats
        assert sum(stats[t] for t in TIER_NAMES) == stats["unique"]
        assert stats["shots"] == 512 * 4
        for qubit in result.per_qubit:
            per = qubit.result.decode_stats
            assert sum(per[t] for t in TIER_NAMES) == per["unique"]

    def test_refresh_ablation_hurts_lossy_storage(self):
        """Dropping DRAM refresh leaves stored qubits uncorrected.

        The trade-off is real on both sides: each refresh round costs
        gate noise, so it pays exactly when cavity idling is the larger
        hazard.  With a lossy cavity (T1 cut to 30 µs) the starved
        bystander accumulates multi-error idle windows that defeat the
        code unless the background refresh keeps correcting it.
        """
        program = LogicalProgram()
        program.alloc(0, 1, 2)
        for _ in range(12):
            program.cnot(0, 1)
        machine = _machine(grid=(1, 1), modes=6)
        model = _model().with_(t1_cavity_override=200e-6)
        dram = run_program_experiment(
            program, machine, model, shots=2048, refresh="dram"
        )
        none = run_program_experiment(
            program, machine, model, shots=2048, refresh="none"
        )
        q2_dram = dram.per_qubit[2].result
        q2_none = none.per_qubit[2].result
        assert dram.schedule.refresh_times[2]
        # Counts are bit-deterministic at fixed seed, so the strict
        # inequality is a pinned regression, not a statistical flake
        # (measured margin ~11%: 558 vs 620 errors of 2048).
        assert q2_none.logical_errors > q2_dram.logical_errors

    def test_program_error_rate_combines_per_qubit(self):
        result = run_program_experiment(
            LogicalProgram.bell_pairs(4), _machine(), shots=512
        )
        assert result.program_error_rate >= result.worst_qubit_rate
        survival = 1.0
        for qubit in result.per_qubit:
            survival *= 1.0 - qubit.logical_error_rate
        assert result.program_error_rate == pytest.approx(1.0 - survival)
        lo, hi = result.confidence_interval
        assert lo <= result.program_error_rate <= hi

    def test_rejects_unknown_refresh_policy(self):
        with pytest.raises(ValueError, match="refresh"):
            run_program_experiment(
                LogicalProgram.bell_pairs(2), _machine(), shots=64, refresh="maybe"
            )

    def test_compare_architectures_sweeps_and_shares_caches(self):
        comparison = compare_architectures(
            LogicalProgram.bell_pairs(4),
            distances=(3,),
            shots=256,
            program_name="pairs",
        )
        assert len(comparison.rows) == 4  # 2 embeddings x 2 refresh policies
        schemes = {(r.embedding, r.refresh) for r in comparison.rows}
        assert schemes == {
            ("compact", "dram"),
            ("compact", "none"),
            ("natural", "dram"),
            ("natural", "none"),
        }
        assert comparison.lowering_cache.hits > 0
        assert comparison.graph_cache.hits > 0
        totals = comparison.decode_totals()
        assert sum(totals[t] for t in TIER_NAMES) == totals["unique"]
        assert len(comparison.table_rows()) == 4

    def test_build_program(self):
        assert build_program("pairs", 4).num_qubits == 4
        assert build_program("ghz", 3).num_qubits == 3
        with pytest.raises(ValueError):
            build_program("vibes", 4)
        with pytest.raises(ValueError):
            LogicalProgram.bell_pairs(3)
