"""Tests for the durable campaign layer (``repro.durable``).

The contract under test: a campaign checkpointed to a run ledger and
interrupted at *any* block boundary, then resumed, is **bit-identical**
to the same campaign run uninterrupted — same error counts, same shot
totals, same decode-tier stats, same ledger block records — for both
sampling backends and any worker count; injected crashes, hangs and
exceptions are retried/quarantined but can never alter a completed
block's result; and every corrupted-ledger case is either tolerated
(torn tail) or a hard error naming the line (interior corruption).
"""

import json
import tempfile
import time
from pathlib import Path

import pytest
from hypothesis import given, settings, strategies as st

from repro.decoders import TIER_NAMES
from repro.durable import (
    CampaignInterrupted,
    DurableExecutor,
    FaultPlan,
    InjectedChunkError,
    LedgerError,
    RetryPolicy,
    RunLedger,
    lint_ledger,
    parse_fault_spec,
    parse_ledger,
    run_key,
)
from repro.noise import BASELINE_HARDWARE, ErrorModel
from repro.sim import SHOT_BLOCK, run_memory_experiment
from repro.sim.engine import BlockExecutionError, block_seeds, run_block
from repro.sim.experiment import prepare_decoding
from repro.surface_code import baseline_memory_circuit

# 2100 shots = two full 1024-shot blocks plus a 52-shot remainder block.
SHOTS = 2100
SEED = 11
SPEC = {"command": "test-durable", "shots": SHOTS, "seed": SEED, "version": 1}

_MEMORY = baseline_memory_circuit(3, ErrorModel(hardware=BASELINE_HARDWARE, p=5e-3))

#: Fast supervision for tests: near-zero backoff, short timeouts.
FAST = RetryPolicy(block_timeout=60.0, max_attempts=3, retry_base_delay=0.001)


def _run(path, *, workers=1, fault=None, backend="packed", policy=FAST,
         target_ci_width=None, stop_interval_blocks=1, shots=SHOTS, seed=SEED):
    """One durable memory campaign against the ledger at ``path``."""
    ledger = RunLedger(path, SPEC, fault=fault)
    executor = DurableExecutor(
        ledger,
        workers=workers,
        policy=policy,
        fault=fault,
        target_ci_width=target_ci_width,
        stop_interval_blocks=stop_interval_blocks,
    )
    try:
        result = run_memory_experiment(
            _MEMORY, shots=shots, seed=seed, backend=backend, executor=executor
        )
    finally:
        ledger.close()
    return result, executor


#: backend -> (uninterrupted result, its ledger block records)
_CLEAN: dict = {}


def _clean_run(backend):
    """The uninterrupted reference campaign (cached per backend)."""
    if backend not in _CLEAN:
        with tempfile.TemporaryDirectory() as td:
            path = Path(td) / "clean.jsonl"
            result, _ = _run(path, backend=backend)
            _CLEAN[backend] = (result, parse_ledger(path).blocks)
    return _CLEAN[backend]


class TestResumeBitIdentity:
    """ISSUE satellite: resume after interrupt at ANY block boundary
    reproduces the uninterrupted campaign bit-for-bit (both backends,
    workers 1 vs 4)."""

    @pytest.mark.parametrize("backend", ["packed", "reference"])
    @pytest.mark.parametrize("workers", [1, 4])
    @settings(max_examples=3, deadline=None)
    @given(cut=st.integers(min_value=1, max_value=3))
    def test_interrupt_resume_is_bit_identical(self, backend, workers, cut):
        clean_result, clean_blocks = _clean_run(backend)
        with tempfile.TemporaryDirectory() as td:
            path = Path(td) / "run.jsonl"
            # abort_after=cut simulates a SIGTERM after `cut` blocks ran
            with pytest.raises(CampaignInterrupted):
                _run(path, workers=workers, backend=backend,
                     fault=FaultPlan(abort_after=cut))
            resumed, executor = _run(path, workers=workers, backend=backend)
            assert resumed.logical_errors == clean_result.logical_errors
            assert resumed.shots == clean_result.shots
            assert resumed.decode_stats == clean_result.decode_stats
            # Ledger block records are byte-comparable with the clean run's.
            assert parse_ledger(path).blocks == clean_blocks
            outcome = executor.units[-1]
            assert outcome.resumed_blocks >= min(cut, 3)
            assert outcome.completed == outcome.scheduled == 3
            assert not outcome.quarantined

    @pytest.mark.parametrize("backend", ["packed", "reference"])
    def test_workers_do_not_change_durable_results(self, backend):
        clean_result, clean_blocks = _clean_run(backend)
        with tempfile.TemporaryDirectory() as td:
            path = Path(td) / "w4.jsonl"
            result, _ = _run(path, workers=4, backend=backend)
            assert result.logical_errors == clean_result.logical_errors
            assert result.decode_stats == clean_result.decode_stats
            assert parse_ledger(path).blocks == clean_blocks

    def test_fully_resumed_unit_executes_nothing(self):
        with tempfile.TemporaryDirectory() as td:
            path = Path(td) / "run.jsonl"
            first, _ = _run(path)
            again, executor = _run(path)
            assert again == first
            outcome = executor.units[-1]
            assert outcome.executed_blocks == 0
            assert outcome.resumed_blocks == 3


class TestFaultInjectionNeverAltersResults:
    """Injected crashes/hangs/exceptions are retried with backoff and
    the completed results stay bit-identical to the fault-free run."""

    def test_inline_crash_and_exception_faults(self):
        clean_result, clean_blocks = _clean_run("packed")
        fault = FaultPlan(seed=1, crash_rate=0.5, exc_rate=0.3)
        with tempfile.TemporaryDirectory() as td:
            path = Path(td) / "chaos.jsonl"
            result, executor = _run(path, fault=fault)
            assert result.logical_errors == clean_result.logical_errors
            assert result.decode_stats == clean_result.decode_stats
            assert parse_ledger(path).blocks == clean_blocks
            assert executor.failed_blocks == []

    def test_pool_crash_faults_are_retried(self):
        clean_result, clean_blocks = _clean_run("packed")
        fault = FaultPlan(seed=1, crash_rate=0.9)  # fires on attempt 0 of every block
        with tempfile.TemporaryDirectory() as td:
            path = Path(td) / "chaos.jsonl"
            result, executor = _run(
                path, workers=2, fault=fault,
                policy=RetryPolicy(block_timeout=60.0, max_attempts=6,
                                   retry_base_delay=0.001),
            )
            assert result.logical_errors == clean_result.logical_errors
            assert parse_ledger(path).blocks == clean_blocks
            assert executor.total_retries > 0
            events = [e["event"] for e in parse_ledger(path).events]
            assert "retry" in events

    def test_decode_fault_degrades_to_full_decode_same_errors(self):
        clean_result, _ = _clean_run("packed")
        with tempfile.TemporaryDirectory() as td:
            result, _ = _run(Path(td) / "x.jsonl",
                             fault=FaultPlan(decode_rate=1.0))
            # Graceful degradation: the tier-free fallback decodes the
            # same syndromes to the same corrections.
            assert result.logical_errors == clean_result.logical_errors
            assert result.shots == clean_result.shots
            assert result.decode_stats["fallback"] == 3
            assert result.decode_stats["full"] == result.decode_stats["unique"] - \
                result.decode_stats["trivial"]

    def test_quarantine_accounting(self):
        """An unrecoverable block is quarantined, reported, and excluded
        from the estimate — completed + quarantined == scheduled."""
        fault = FaultPlan(exc_rate=1.0, only_blocks=(1,), max_faults_per_block=99)
        with tempfile.TemporaryDirectory() as td:
            path = Path(td) / "q.jsonl"
            result, executor = _run(path, fault=fault)
            outcome = executor.units[-1]
            assert outcome.quarantined == [1]
            assert outcome.completed + len(outcome.quarantined) == outcome.scheduled
            assert result.shots == SHOTS - SHOT_BLOCK  # block 1 excluded
            assert executor.failed_blocks == [("memory", 1)]
            assert "failed_blocks=1" in executor.format_report()
            assert "memory#1" in executor.format_report()
            # The ledger reconciles (no LED005) and flags nothing fatal.
            report = lint_ledger(path)
            assert report.ok, report.format_text()
            events = parse_ledger(path).events
            assert any(e["event"] == "quarantine" for e in events)

    def test_torn_write_fault_interrupts_then_resumes(self):
        clean_result, clean_blocks = _clean_run("packed")
        fault = FaultPlan(torn_write_rate=1.0, only_blocks=(1,))
        with tempfile.TemporaryDirectory() as td:
            path = Path(td) / "torn.jsonl"
            with pytest.raises(CampaignInterrupted):
                _run(path, fault=fault)
            assert parse_ledger(path).torn_tail
            # Resume repairs the tail; the fault re-rolls at generation 1
            # and (rate keyed on generation) fires again only if scheduled.
            resumed, _ = _run(path, fault=FaultPlan())
            assert resumed.logical_errors == clean_result.logical_errors
            assert parse_ledger(path).blocks == clean_blocks
            events = [e["event"] for e in parse_ledger(path).events]
            assert "repair" in events


class TestLedgerCorruption:
    """Satellite: torn final line tolerated; interior corruption is a
    hard error naming the line."""

    def _ledger_with_blocks(self, td):
        path = Path(td) / "led.jsonl"
        _run(path)
        return path

    def test_torn_tail_is_tolerated_and_repaired(self):
        with tempfile.TemporaryDirectory() as td:
            path = self._ledger_with_blocks(td)
            with open(path, "ab") as fh:
                fh.write(b'{"kind":"block","unit":"memory","blo')  # no newline
            parsed = parse_ledger(path)
            assert parsed.torn_tail
            assert len(parsed.blocks["memory"]) == 3  # durable lines intact
            # Reopening truncates the tear and logs a repair event.
            ledger = RunLedger(path, SPEC)
            ledger.close()
            parsed = parse_ledger(path)
            assert not parsed.torn_tail
            assert parsed.repair_generation == 1
            assert any(e["event"] == "repair" for e in parsed.events)

    def test_interior_corruption_is_hard_error_naming_line(self):
        with tempfile.TemporaryDirectory() as td:
            path = self._ledger_with_blocks(td)
            lines = path.read_bytes().split(b"\n")
            lines[2] = b'{"kind":"block","unit":'  # newline-terminated garbage
            path.write_bytes(b"\n".join(lines))
            with pytest.raises(LedgerError, match="line 3"):
                parse_ledger(path)
            with pytest.raises(LedgerError, match="line 3"):
                RunLedger(path, SPEC)

    def test_duplicate_block_is_hard_error(self):
        with tempfile.TemporaryDirectory() as td:
            path = self._ledger_with_blocks(td)
            lines = path.read_bytes().split(b"\n")
            block_line = next(ln for ln in lines if b'"kind":"block"' in ln)
            path.write_bytes(path.read_bytes() + block_line + b"\n")
            with pytest.raises(LedgerError, match="duplicate block"):
                parse_ledger(path)

    def test_missing_header_is_hard_error(self):
        with tempfile.TemporaryDirectory() as td:
            path = Path(td) / "noheader.jsonl"
            path.write_text('{"kind":"event","event":"retry"}\n')
            with pytest.raises(LedgerError, match="header"):
                parse_ledger(path)

    def test_spec_mismatch_refuses_resume(self):
        with tempfile.TemporaryDirectory() as td:
            path = self._ledger_with_blocks(td)
            with pytest.raises(LedgerError, match="different campaign"):
                RunLedger(path, {**SPEC, "seed": SEED + 1})

    def test_run_key_is_order_insensitive_and_value_sensitive(self):
        assert run_key({"a": 1, "b": 2}) == run_key({"b": 2, "a": 1})
        assert run_key({"a": 1}) != run_key({"a": 2})


class TestLedgerLint:
    def test_clean_ledger_lints_green(self):
        with tempfile.TemporaryDirectory() as td:
            path = Path(td) / "led.jsonl"
            _run(path)
            report = lint_ledger(path)
            assert report.ok and not report.warnings
            assert report.checked["ledger_blocks"] == 3
            assert report.checked["ledger_units"] == 1

    def test_missing_file_is_led001(self):
        report = lint_ledger("/nonexistent/led.jsonl")
        assert [d.code for d in report.errors] == ["LED001"]

    def test_tier_imbalance_is_led004_and_totals_mismatch_is_led005(self):
        with tempfile.TemporaryDirectory() as td:
            path = Path(td) / "led.jsonl"
            _run(path)
            lines = path.read_text().splitlines()
            out = []
            for line in lines:
                record = json.loads(line)
                if record["kind"] == "block" and record["block"] == 0:
                    record["stats"]["trivial"] += 1  # break the tier sum
                    record["errors"] += 1  # break the unit reconciliation
                out.append(json.dumps(record, sort_keys=True,
                                      separators=(",", ":")))
            path.write_text("\n".join(out) + "\n")
            codes = sorted(d.code for d in lint_ledger(path).errors)
            assert codes == ["LED004", "LED005"]

    def test_interrupted_campaign_warns_led007(self):
        with tempfile.TemporaryDirectory() as td:
            path = Path(td) / "led.jsonl"
            with pytest.raises(CampaignInterrupted):
                _run(path, fault=FaultPlan(abort_after=1))
            report = lint_ledger(path)
            assert report.ok  # interruption is not corruption
            assert any(d.code == "LED007" for d in report.warnings)


class TestEarlyStopping:
    def test_wide_target_stops_after_first_wave(self):
        with tempfile.TemporaryDirectory() as td:
            result, executor = _run(Path(td) / "led.jsonl",
                                    target_ci_width=0.5)
            outcome = executor.units[-1]
            assert outcome.stopped_early
            assert result.shots == SHOT_BLOCK  # one 1-block wave sufficed

    def test_stop_decision_is_worker_invariant(self):
        results = []
        for workers in (1, 4):
            with tempfile.TemporaryDirectory() as td:
                result, executor = _run(
                    Path(td) / "led.jsonl", workers=workers,
                    target_ci_width=0.02, stop_interval_blocks=2,
                )
                results.append((result.shots, result.logical_errors,
                                executor.units[-1].stopped_early))
        assert results[0] == results[1]

    def test_resume_reuses_early_stop_decision_verbatim(self):
        with tempfile.TemporaryDirectory() as td:
            path = Path(td) / "led.jsonl"
            first, _ = _run(path, target_ci_width=0.5)
            # Resume WITHOUT the target: the recorded decision wins, no
            # blocks execute, totals are identical.
            again, executor = _run(path)
            assert (again.shots, again.logical_errors) == (
                first.shots, first.logical_errors)
            assert executor.units[-1].executed_blocks == 0
            assert executor.units[-1].stopped_early


class TestFaultPlan:
    def test_decisions_are_deterministic(self):
        a = FaultPlan(seed=7, crash_rate=0.3)
        b = FaultPlan(seed=7, crash_rate=0.3)
        rolls_a = [a._fires("crash", 0.3, "u", i, 0) for i in range(64)]
        rolls_b = [b._fires("crash", 0.3, "u", i, 0) for i in range(64)]
        assert rolls_a == rolls_b
        assert any(rolls_a) and not all(rolls_a)

    def test_max_faults_per_block_bounds_retries(self):
        plan = FaultPlan(seed=0, exc_rate=1.0, max_faults_per_block=2)
        assert plan._fires("exc", 1.0, "u", 0, 0)
        assert plan._fires("exc", 1.0, "u", 0, 1)
        assert not plan._fires("exc", 1.0, "u", 0, 2)

    def test_parse_fault_spec_roundtrip(self):
        plan = parse_fault_spec(
            "crash=0.15,hang=0.08,exc=0.1,decode=0.2,torn=0.05,"
            "seed=7,abort=3,hang-seconds=1.5,max-faults=4,only=0+2"
        )
        assert plan == FaultPlan(
            seed=7, crash_rate=0.15, hang_rate=0.08, exc_rate=0.1,
            decode_rate=0.2, torn_write_rate=0.05, abort_after=3,
            hang_seconds=1.5, max_faults_per_block=4, only_blocks=(0, 2),
        )

    @pytest.mark.parametrize("spec", [
        "crash=2", "crash=-0.1", "bogus=1", "crash", "seed=x",
    ])
    def test_parse_fault_spec_rejects(self, spec):
        with pytest.raises(ValueError):
            parse_fault_spec(spec)


class TestBlockErrorContext:
    """Satellite: worker-side exceptions carry the failing block index
    and seed, so the failure is reproducible from the message alone."""

    def test_sampling_failure_names_block_and_seed(self):
        setup = prepare_decoding(_MEMORY)

        class BrokenSampler:
            def sample(self, shots, seed):
                raise ValueError("boom")

        index, shots, seed = block_seeds(SHOTS, SEED)[2]
        with pytest.raises(BlockExecutionError) as excinfo:
            run_block(BrokenSampler(), setup.decoder, setup.basis_detectors,
                      setup.basis_observables, index, shots, seed)
        err = excinfo.value
        assert err.block == 2
        assert "block 2" in str(err)
        assert f"entropy={SEED}" in str(err)
        assert "spawn_key=(2,)" in str(err)
        assert "boom" in str(err)

    def test_injected_chunk_error_names_block(self):
        fault = FaultPlan(exc_rate=1.0)
        with pytest.raises(InjectedChunkError, match=r"block=1 attempt=0"):
            fault.apply("memory", 1, 0, inline=True)


class TestCLIValidation:
    """Satellite: malformed CLI inputs fail fast with a clear message
    (one regression test per flag)."""

    def _error(self, capsys, argv):
        from repro.__main__ import main
        with pytest.raises(SystemExit) as excinfo:
            main(argv)
        assert excinfo.value.code == 2
        return capsys.readouterr().err

    def test_rejects_nonpositive_shots(self, capsys):
        err = self._error(capsys, ["memory", "--shots", "0"])
        assert "expected a positive integer, got 0" in err

    def test_rejects_even_distance(self, capsys):
        err = self._error(capsys, ["memory", "--distance", "4"])
        assert "odd integer >= 3, got 4" in err

    def test_rejects_too_small_distance(self, capsys):
        err = self._error(capsys, ["compare", "--distance", "1"])
        assert "odd integer >= 3, got 1" in err

    def test_rejects_unknown_policy(self, capsys):
        err = self._error(capsys, ["compare", "--policy", "bogus"])
        assert "invalid choice: 'bogus'" in err

    def test_rejects_unknown_backend(self, capsys):
        err = self._error(capsys, ["memory", "--backend", "simd"])
        assert "invalid choice: 'simd'" in err

    def test_rejects_unknown_scheme(self, capsys):
        err = self._error(capsys, ["memory", "--scheme", "bogus"])
        assert "invalid choice: 'bogus'" in err

    def test_rejects_out_of_range_probability(self, capsys):
        err = self._error(capsys, ["memory", "--p", "2"])
        assert "probability in (0, 1)" in err

    def test_rejects_bad_chaos_spec(self, capsys):
        err = self._error(capsys,
                          ["memory", "--ledger", "x", "--chaos", "crash=2"])
        assert "bad fault spec value for 'crash'" in err

    def test_durable_flags_require_ledger(self, capsys):
        from repro.__main__ import main
        for flag in (["--resume"], ["--target-ci-width", "0.1"],
                     ["--chaos", "crash=0.1"]):
            assert main(["memory", "--shots", "60", *flag]) == 2
            assert "requires --ledger" in capsys.readouterr().err

    def test_scheme_choices_pin_threshold_schemes(self):
        # __main__ hardcodes the choices to avoid importing the threshold
        # stack at parser-build time; this pins the two lists together.
        from repro.__main__ import _SCHEME_CHOICES
        from repro.threshold import SCHEMES
        assert _SCHEME_CHOICES == SCHEMES


class TestCLIDurable:
    def test_memory_ledger_run_resume_and_lint(self, capsys, tmp_path):
        from repro.__main__ import main
        ledger = str(tmp_path / "led.jsonl")
        assert main(["memory", "--scheme", "baseline", "--shots", "200",
                     "--ledger", ledger]) == 0
        out = capsys.readouterr().out
        assert "durable run" in out and "failed_blocks=0" in out
        # Same command without --resume must refuse the existing ledger.
        assert main(["memory", "--scheme", "baseline", "--shots", "200",
                     "--ledger", ledger]) == 2
        assert "--resume" in capsys.readouterr().err
        # Resume is a full cache hit.
        assert main(["memory", "--scheme", "baseline", "--shots", "200",
                     "--ledger", ledger, "--resume"]) == 0
        out = capsys.readouterr().out
        assert "blocks executed=0" in out and "resumed=1" in out
        assert main(["lint", "--ledger-only", "--ledger", ledger]) == 0
        out = capsys.readouterr().out
        assert "ledger_blocks=1" in out and "0 error(s)" in out

    def test_chaos_abort_exits_130_and_resume_completes(self, capsys, tmp_path):
        from repro.__main__ import main
        ledger = str(tmp_path / "led.jsonl")
        argv = ["memory", "--scheme", "baseline", "--shots", "2100",
                "--ledger", ledger]
        assert main([*argv, "--chaos", "abort=1"]) == 130
        assert "rerun with --resume" in capsys.readouterr().err
        assert main([*argv, "--resume"]) == 0
        assert "failed_blocks=0" in capsys.readouterr().out

    def test_lint_ledger_only_requires_ledger(self, capsys):
        from repro.__main__ import main
        assert main(["lint", "--ledger-only"]) == 2
        assert "--ledger" in capsys.readouterr().err


class TestDurableVsPlainEngine:
    """Durable and plain engine agree on counts; stats differ only in
    the declared way (no cross-block `cached` reuse)."""

    def test_error_counts_match_plain_engine(self):
        plain = run_memory_experiment(_MEMORY, shots=SHOTS, seed=SEED)
        durable, _ = _clean_run("packed")
        assert durable.logical_errors == plain.logical_errors
        assert durable.shots == plain.shots

    def test_durable_stats_have_no_cached_tier(self):
        durable, _ = _clean_run("packed")
        assert durable.decode_stats.get("cached", 0) == 0
        tier_sum = sum(durable.decode_stats.get(t, 0) for t in TIER_NAMES)
        assert tier_sum == durable.decode_stats["unique"]


class _FakeProc:
    def __init__(self):
        self.alive = True
        self.exitcode = None

    def is_alive(self):
        return self.alive


class _FakeQueue:
    def __init__(self):
        self.items = []

    def put(self, item):
        self.items.append(item)


class _FakeFleet:
    """Deterministic stand-in for WorkerFleet: no processes, no races."""

    def __init__(self, size=1):
        self.slots = [
            {"proc": _FakeProc(), "q": _FakeQueue(), "busy": None}
            for _ in range(size)
        ]
        self.epoch = 0
        self.respawned = []

    def configure(self, worker_args, fault=None):
        self.epoch += 1
        for slot in self.slots:
            slot["busy"] = None
        return self.epoch

    def respawn(self, wid):
        self.respawned.append(wid)
        self.slots[wid] = {"proc": _FakeProc(), "q": _FakeQueue(), "busy": None}


def _make_supervisor(fleet, blocks, policy):
    """A _PoolSupervisor wired to recording callbacks (no processes)."""
    from repro.durable.supervise import (
        BlockOutcome,
        SupervisedResult,
        _PoolSupervisor,
    )

    result = SupervisedResult()

    def block_done(outcome):
        result.completed.append(outcome)

    def fail(index, shots, attempt, reason):
        next_attempt = attempt + 1
        if next_attempt >= policy.max_attempts:
            result.quarantined.append(
                BlockOutcome(index=index, shots=shots, attempts=next_attempt,
                             quarantined=True, failure=reason)
            )
            return None
        result.retries += 1
        return (index, next_attempt, 0.0)

    supervisor = _PoolSupervisor(
        fleet, blocks, ("sampler", "decoder", "basis", "obs"),
        unit="memory", policy=policy, fault=None, block_done=block_done,
        fail=fail, should_abort=None, result=result, stopped=lambda: False,
    )
    return supervisor, result


class TestCrossRespawnDedup:
    """ISSUE satellite: a late result from a timed-out attempt must not
    disturb the respawned worker running the retry of the same block —
    dedup is exact on (block, attempt), on both the handled set AND the
    busy-slot bookkeeping."""

    def test_late_result_does_not_clear_respawned_workers_busy_entry(self):
        fleet = _FakeFleet(size=1)
        policy = RetryPolicy(block_timeout=10.0, max_attempts=3,
                             retry_base_delay=0.0)
        supervisor, result = _make_supervisor(fleet, [(5, 1024, None)], policy)

        # Retries are re-queued at time.monotonic() + delay, so drive
        # the supervisor with monotonic-anchored clocks.
        base = time.monotonic()
        supervisor.assign(now=base)  # attempt 0 -> worker 0
        assert fleet.slots[0]["busy"][:2] == (5, 0)

        # Deadline fires: attempt 0 is failed, worker 0 respawned, the
        # retry (attempt 1) is scheduled and assigned to the new worker.
        supervisor.sweep(now=base + 100.0)
        assert fleet.respawned == [0]
        assert result.retries == 1
        supervisor.assign(now=time.monotonic() + 1.0)
        assert fleet.slots[0]["busy"][:2] == (5, 1)

        # The original attempt's result finally arrives (the worker was
        # slow, not dead).  It must be ignored entirely: not counted,
        # and — the cross-respawn edge — it must NOT clear the busy
        # entry of the respawned worker running attempt 1.
        supervisor.handle_message(
            ("ok", supervisor.epoch, 0, 5, 0, 7, {"shots": 1024})
        )
        assert result.completed == []
        assert fleet.slots[0]["busy"] is not None
        assert fleet.slots[0]["busy"][:2] == (5, 1)

        # The retry's own result is counted exactly once.
        supervisor.handle_message(
            ("ok", supervisor.epoch, 0, 5, 1, 3, {"shots": 1024})
        )
        assert [o.errors for o in result.completed] == [3]
        assert result.completed[0].attempts == 2
        assert fleet.slots[0]["busy"] is None
        assert result.quarantined == []

    def test_late_result_after_quarantine_adds_no_completion(self):
        fleet = _FakeFleet(size=1)
        policy = RetryPolicy(block_timeout=10.0, max_attempts=1,
                             retry_base_delay=0.0)
        supervisor, result = _make_supervisor(fleet, [(2, 1024, None)], policy)
        supervisor.assign(now=0.0)
        supervisor.sweep(now=100.0)  # only attempt times out -> quarantine
        assert [o.index for o in result.quarantined] == [2]

        supervisor.handle_message(
            ("ok", supervisor.epoch, 0, 2, 0, 9, {"shots": 1024})
        )
        assert result.completed == []  # quarantine stands; no double count
        assert [o.index for o in result.quarantined] == [2]

    def test_cross_epoch_result_is_dropped_before_any_bookkeeping(self):
        fleet = _FakeFleet(size=1)
        policy = RetryPolicy(block_timeout=10.0, max_attempts=3,
                             retry_base_delay=0.0)
        supervisor, result = _make_supervisor(fleet, [(0, 1024, None)], policy)
        supervisor.assign(now=0.0)

        # A straggler from a previous unit of a shared fleet: same wid,
        # same block index, wrong epoch.  Dropped wholesale — it neither
        # counts nor consumes (0, 0) in the handled set.
        supervisor.handle_message(
            ("ok", supervisor.epoch - 1, 0, 0, 0, 9, {"shots": 1024})
        )
        assert result.completed == []
        assert (0, 0) not in supervisor.handled

        supervisor.handle_message(
            ("ok", supervisor.epoch, 0, 0, 0, 2, {"shots": 1024})
        )
        assert [o.errors for o in result.completed] == [2]


class TestWorkerFleetReuse:
    """Tentpole hook: one persistent fleet serves many units (epochs)
    with results bit-identical to ephemeral per-call pools."""

    def test_fleet_reuse_across_units_is_bit_identical(self):
        from repro.durable import WorkerFleet

        clean_result, clean_blocks = _clean_run("packed")
        with WorkerFleet(2) as fleet:
            with tempfile.TemporaryDirectory() as td:
                first, _ = _run_with_fleet(Path(td) / "a.jsonl", fleet)
                second, _ = _run_with_fleet(Path(td) / "b.jsonl", fleet)
                assert first.logical_errors == clean_result.logical_errors
                assert second.logical_errors == clean_result.logical_errors
                assert parse_ledger(Path(td) / "a.jsonl").blocks == clean_blocks
                assert parse_ledger(Path(td) / "b.jsonl").blocks == clean_blocks
            # Epochs advanced (one per supervised chunk) but the
            # workers themselves persisted across both campaigns.
            assert fleet.epoch >= 2
            assert fleet.respawns == 0
            assert fleet.alive_workers() == 2

    def test_fleet_survives_crash_faults_across_units(self):
        from repro.durable import WorkerFleet

        clean_result, clean_blocks = _clean_run("packed")
        fault = FaultPlan(seed=1, crash_rate=0.9)
        with WorkerFleet(2) as fleet:
            with tempfile.TemporaryDirectory() as td:
                path = Path(td) / "chaos.jsonl"
                result, executor = _run_with_fleet(
                    path, fleet, fault=fault,
                    policy=RetryPolicy(block_timeout=60.0, max_attempts=6,
                                       retry_base_delay=0.001),
                )
                assert result.logical_errors == clean_result.logical_errors
                assert parse_ledger(path).blocks == clean_blocks
                assert executor.total_retries > 0
            assert fleet.respawns > 0  # crashes really killed workers
            assert fleet.alive_workers() == 2  # ...and the fleet healed


def _run_with_fleet(path, fleet, *, fault=None, policy=FAST):
    """A durable memory campaign on a borrowed persistent fleet."""
    ledger = RunLedger(path, SPEC, fault=fault)
    executor = DurableExecutor(
        ledger, workers=2, policy=policy, fault=fault, fleet=fleet,
        stop_interval_blocks=1,
    )
    try:
        result = run_memory_experiment(
            _MEMORY, shots=SHOTS, seed=SEED, backend="packed",
            executor=executor,
        )
    finally:
        ledger.close()
    return result, executor
