"""Tests for the batched, sharded Monte-Carlo engine and decode_batch.

The engine's contract: for a fixed seed, the logical-error count is a pure
function of (circuit, seed, shots) — bit-identical for any ``workers`` or
``chunk_size`` — and decode work scales with *unique* syndromes, not shots
(the regression the old unbounded per-shot dict cache guarded poorly).
"""

import numpy as np
import pytest

from repro.decoders import MatchingGraph, UnionFindDecoder, make_decoder
from repro.dem import DetectorErrorModel
from repro.noise import BASELINE_HARDWARE, ErrorModel
from repro.sim import SHOT_BLOCK, run_memory_experiment, shot_blocks
from repro.sim.frame import sample_detection_chunks, sample_detection_data
from repro.surface_code import baseline_memory_circuit


def _memory(p=5e-3, d=3):
    return baseline_memory_circuit(d, ErrorModel(hardware=BASELINE_HARDWARE, p=p))


class TestShotBlocks:
    def test_partition_sums_to_shots(self):
        for shots in (1, SHOT_BLOCK - 1, SHOT_BLOCK, SHOT_BLOCK + 1, 5000):
            sizes = shot_blocks(shots)
            assert sum(sizes) == shots
            assert all(s == SHOT_BLOCK for s in sizes[:-1])
            assert 0 < sizes[-1] <= SHOT_BLOCK

    def test_partition_depends_only_on_shots(self):
        assert shot_blocks(4000) == shot_blocks(4000)

    def test_rejects_zero_shots(self):
        with pytest.raises(ValueError):
            shot_blocks(0)


class TestDeterminism:
    """Same seed ⇒ identical result for any workers / chunk_size.

    Holds per backend: each of ``packed``/``reference`` defines its own
    canonical random stream, and within a stream the count is a pure
    function of (circuit, seed, shots).
    """

    # 2100 shots spans two full blocks plus a remainder block.
    SHOTS = 2100

    @pytest.mark.parametrize("backend", ["packed", "reference"])
    @pytest.mark.parametrize("decoder", ["unionfind", "mwpm"])
    def test_workers_and_chunks_do_not_change_counts(self, decoder, backend):
        memory = _memory()
        reference = run_memory_experiment(
            memory, shots=self.SHOTS, decoder=decoder, seed=11, backend=backend
        )
        for workers, chunk_size in [(1, 1024), (1, 1500), (4, 1024), (4, 4096)]:
            result = run_memory_experiment(
                memory,
                shots=self.SHOTS,
                decoder=decoder,
                seed=11,
                workers=workers,
                chunk_size=chunk_size,
                backend=backend,
            )
            assert result == reference, (workers, chunk_size, backend)

    @pytest.mark.parametrize("backend", ["packed", "reference"])
    def test_different_seeds_differ(self, backend):
        memory = _memory()
        a = run_memory_experiment(memory, shots=self.SHOTS, seed=1, backend=backend)
        b = run_memory_experiment(memory, shots=self.SHOTS, seed=2, backend=backend)
        assert a.logical_errors != b.logical_errors

    def test_backends_agree_statistically(self):
        memory = _memory()
        packed = run_memory_experiment(memory, shots=self.SHOTS, seed=3)
        reference = run_memory_experiment(
            memory, shots=self.SHOTS, seed=3, backend="reference"
        )
        assert abs(packed.logical_errors - reference.logical_errors) <= max(
            10, 0.5 * reference.logical_errors
        )

    def test_invalid_engine_parameters(self):
        memory = _memory()
        with pytest.raises(ValueError):
            run_memory_experiment(memory, shots=100, workers=0)
        with pytest.raises(ValueError):
            run_memory_experiment(memory, shots=100, chunk_size=0)
        with pytest.raises(ValueError):
            run_memory_experiment(memory, shots=100, backend="simd")

    def test_decode_stats_accumulator_does_not_alias_results(self):
        """A shared accumulator sums across runs; each result keeps its
        own per-run stats (regression: the accumulator used to be
        attached to every result, so later runs corrupted earlier ones)."""
        memory = _memory()
        accumulator: dict = {}
        first = run_memory_experiment(
            memory, shots=200, seed=0, decode_stats=accumulator
        )
        second = run_memory_experiment(
            memory, shots=300, seed=1, decode_stats=accumulator
        )
        assert first.decode_stats["shots"] == 200
        assert second.decode_stats["shots"] == 300
        assert accumulator["shots"] == 500
        assert first.decode_stats is not accumulator
        assert second.decode_stats is not accumulator


class TestPackObservables:
    def test_packs_low_bits(self):
        from repro.sim.engine import _pack_observables

        observables = np.array([[True, False], [False, True], [True, True]])
        np.testing.assert_array_equal(
            _pack_observables(observables, [0, 1]), [1, 2, 3]
        )

    def test_rejects_more_than_63_observables(self):
        from repro.sim.engine import _pack_observables

        observables = np.zeros((4, 64), dtype=bool)
        with pytest.raises(ValueError, match="63 observables"):
            _pack_observables(observables, list(range(64)))

    def test_count_logical_errors_rejects_wide_basis_up_front(self):
        from repro.sim.engine import count_logical_errors

        memory = _memory()
        with pytest.raises(ValueError, match="63 observables"):
            count_logical_errors(
                memory.circuit, None, [0], list(range(64)), shots=10
            )


class TestSampleDetectionChunks:
    def test_blocks_match_direct_sampling(self):
        memory = _memory()
        seeds = np.random.SeedSequence(3).spawn(2)
        blocks = [(100, seeds[0]), (50, seeds[1])]
        chunks = list(sample_detection_chunks(memory.circuit, blocks))
        assert [c.shots for c in chunks] == [100, 50]
        direct = sample_detection_data(
            memory.circuit, 100, np.random.default_rng(seeds[0])
        )
        assert np.array_equal(chunks[0].detectors, direct.detectors)
        assert np.array_equal(chunks[0].observables, direct.observables)


class TestDecodeBatch:
    def _decoder(self):
        memory = _memory()
        dem = DetectorErrorModel(memory.circuit)
        graph = MatchingGraph.from_dem(dem, memory.basis)
        return make_decoder("unionfind", graph), dem, memory

    def test_matches_per_shot_decode(self):
        decoder, dem, memory = self._decoder()
        data = sample_detection_data(memory.circuit, 256, 0)
        dets = data.detectors[:, dem.basis_detectors(memory.basis)]
        batched = decoder.decode_batch(dets)
        for shot in range(dets.shape[0]):
            events = np.flatnonzero(dets[shot]).tolist()
            assert batched[shot] == decoder.decode(events)

    def test_decodes_each_unique_syndrome_once(self):
        decoder, dem, memory = self._decoder()
        data = sample_detection_data(memory.circuit, 64, 0)
        dets = data.detectors[:, dem.basis_detectors(memory.basis)]
        # Tile the batch: 4x the shots, same unique syndromes.
        tiled = np.vstack([dets] * 4)
        unique_heavy = len(
            {row.tobytes() for row in dets if row.sum() > 1}
        )
        w1_detectors = len(
            {int(np.argmax(row)) for row in dets if row.sum() == 1}
        )
        calls = []
        inner = decoder.decode
        decoder.decode = lambda events: calls.append(1) or inner(events)
        decoder.decode_batch(tiled)
        # First call: weight-1 table entries are filled on demand (one
        # decode per observed single-event detector; union-find has no
        # analytic override); each unique weight>=2 syndrome goes through
        # the lockstep kernel exactly once (the batched tier), never the
        # per-shot decode.
        assert len(calls) == w1_detectors
        stats = decoder.last_batch_stats
        assert stats["batched"] == unique_heavy
        assert stats["full"] == 0
        # Second call: tables and the cross-batch LRU serve everything.
        calls.clear()
        repeat = decoder.decode_batch(tiled)
        assert len(calls) == 0
        stats = decoder.last_batch_stats
        assert stats["batched"] == 0
        assert stats["full"] == 0
        assert stats["cached"] == unique_heavy
        np.testing.assert_array_equal(repeat, decoder.decode_batch(tiled))

    def test_tier_accounting_sums_to_unique(self):
        decoder, dem, memory = self._decoder()
        data = sample_detection_data(memory.circuit, 512, 0)
        dets = data.detectors[:, dem.basis_detectors(memory.basis)]
        decoder.decode_batch(dets)
        stats = decoder.last_batch_stats
        from repro.decoders import TIER_NAMES

        assert sum(stats[t] for t in TIER_NAMES) == stats["unique"]
        assert stats["shots"] == dets.shape[0]
        unique = len({row.tobytes() for row in dets})
        assert stats["unique"] == unique

    def test_lru_stays_bounded_across_batches(self):
        decoder, dem, memory = self._decoder()
        decoder.lru_capacity = 16
        for seed in range(6):
            data = sample_detection_data(memory.circuit, 128, seed)
            decoder.decode_batch(dets := data.detectors[:, dem.basis_detectors(memory.basis)])
            assert len(decoder._lru) <= 16
        # Capacity zero disables caching entirely.
        decoder._lru.clear()
        decoder.lru_capacity = 0
        decoder.decode_batch(dets)
        assert len(decoder._lru) == 0

    def test_zero_syndromes_skip_the_decoder(self):
        decoder, _, _ = self._decoder()
        decoder.decode = None  # any call would raise
        out = decoder.decode_batch(np.zeros((5, decoder.graph.num_detectors), bool))
        assert np.array_equal(out, np.zeros(5, dtype=np.int64))

    def test_rejects_non_2d_input(self):
        decoder, _, _ = self._decoder()
        with pytest.raises(ValueError):
            decoder.decode_batch(np.zeros(7, dtype=bool))

    def test_empty_batch(self):
        decoder, _, _ = self._decoder()
        out = decoder.decode_batch(np.zeros((0, decoder.graph.num_detectors), bool))
        assert out.shape == (0,)


class TestBoundedDecodeWork:
    def test_decode_calls_scale_with_unique_syndromes_not_shots(self, monkeypatch):
        """Regression for the seed's unbounded per-shot cache.

        At low p most shots repeat a handful of syndromes; total decode
        invocations (the cache-miss analogue, and the working-set bound)
        must stay far below the shot count even across many chunks.
        """
        memory = _memory(p=3e-4)
        shots = 8192
        calls = []
        inner = UnionFindDecoder.decode
        monkeypatch.setattr(
            UnionFindDecoder,
            "decode",
            lambda self, events: calls.append(1) or inner(self, events),
        )
        run_memory_experiment(memory, shots=shots, seed=0, chunk_size=1024)
        assert 0 < len(calls) < shots // 4
