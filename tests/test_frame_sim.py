"""Tests for the vectorized Pauli-frame simulator."""

import pytest

from repro.circuits import Circuit
from repro.noise import BASELINE_HARDWARE, ErrorModel
from repro.sim import FrameSimulator, sample_detection_data
from repro.sim.stats import wilson_interval
from repro.stabilizer import TableauSimulator
from repro.surface_code import baseline_memory_circuit


class TestDeterministic:
    def test_noiseless_record_is_zero(self):
        c = Circuit()
        c.h(0)
        c.cx(0, 1)
        c.measure(0, 1)
        record = FrameSimulator(c, shots=16, seed=0).run()
        assert not record.any()

    def test_forced_x_error_flips(self):
        c = Circuit()
        c.x_error([0], 1.0)
        c.measure(0)
        record = FrameSimulator(c, shots=8, seed=0).run()
        assert record.all()

    def test_z_error_invisible_in_z_basis(self):
        c = Circuit()
        c.z_error([0], 1.0)
        c.measure(0)
        record = FrameSimulator(c, shots=8, seed=0).run()
        assert not record.any()

    def test_hadamard_converts_z_to_flip(self):
        c = Circuit()
        c.z_error([0], 1.0)
        c.h(0)
        c.measure(0)
        record = FrameSimulator(c, shots=8, seed=0).run()
        assert record.all()

    def test_cx_propagation(self):
        c = Circuit()
        c.x_error([0], 1.0)
        c.cx(0, 1)
        c.measure(0, 1)
        record = FrameSimulator(c, shots=4, seed=0).run()
        assert record.all()

    def test_swap_moves_frame(self):
        c = Circuit()
        c.x_error([0], 1.0)
        c.swap(0, 1)
        c.measure(0, 1)
        record = FrameSimulator(c, shots=4, seed=0).run()
        assert not record[:, 0].any()
        assert record[:, 1].all()

    def test_reset_clears_frame(self):
        c = Circuit()
        c.x_error([0], 1.0)
        c.reset(0)
        c.measure(0)
        record = FrameSimulator(c, shots=4, seed=0).run()
        assert not record.any()

    def test_measurement_flip_only_affects_record(self):
        c = Circuit()
        c.measure(0, flip_probability=1.0)
        c.measure(0)
        record = FrameSimulator(c, shots=4, seed=0).run()
        assert record[:, 0].all()
        assert not record[:, 1].any()


class TestStatistics:
    def test_depolarize1_flip_rate(self):
        # X and Y (2 of 3 kinds) flip a Z-basis measurement: rate = 2p/3.
        p = 0.3
        c = Circuit()
        c.append("DEPOLARIZE1", (0,), (p,))
        c.measure(0)
        shots = 40_000
        record = FrameSimulator(c, shots=shots, seed=5).run()
        rate = record.mean()
        lo, hi = wilson_interval(int(record.sum()), shots)
        assert lo <= 2 * p / 3 <= hi, rate

    def test_depolarize2_marginal(self):
        # Each qubit of a pair sees an X-component with rate 8p/15.
        p = 0.3
        c = Circuit()
        c.append("DEPOLARIZE2", (0, 1), (p,))
        c.measure(0, 1)
        shots = 40_000
        record = FrameSimulator(c, shots=shots, seed=6).run()
        for col in range(2):
            lo, hi = wilson_interval(int(record[:, col].sum()), shots)
            assert lo <= 8 * p / 15 <= hi

    def test_agrees_with_tableau_monte_carlo(self):
        # Same noisy circuit, same physics: flip rates must agree.
        c = Circuit()
        c.h(0)
        c.append("DEPOLARIZE1", (0,), (0.4,))
        c.h(0)
        c.measure(0)
        shots = 4000
        frame_record = FrameSimulator(c, shots=shots, seed=7).run()
        tableau_hits = 0
        for seed in range(shots // 10):
            sim = TableauSimulator(1, seed=seed)
            tableau_hits += sim.run(c)[0]
        frame_rate = frame_record.mean()
        tableau_rate = tableau_hits / (shots // 10)
        assert frame_rate == pytest.approx(tableau_rate, abs=0.06)


class TestDetectionData:
    def test_noiseless_detectors_quiet(self):
        # p = 0 kills gate errors; infinite T1 kills idle/storage errors.
        em = ErrorModel(
            hardware=BASELINE_HARDWARE,
            p=0.0,
            scale_coherence=False,
            t1_transmon_override=float("inf"),
        )
        memory = baseline_memory_circuit(3, em)
        data = sample_detection_data(memory.circuit, shots=32, seed=0)
        assert not data.detectors.any()
        assert not data.observables.any()

    def test_noisy_detectors_fire(self):
        em = ErrorModel(hardware=BASELINE_HARDWARE, p=0.05)
        memory = baseline_memory_circuit(3, em)
        data = sample_detection_data(memory.circuit, shots=64, seed=0)
        assert data.detectors.any()
        assert data.shots == 64

    def test_detector_rate_scales_with_p(self):
        rates = []
        for p in (1e-3, 1e-2):
            em = ErrorModel(hardware=BASELINE_HARDWARE, p=p)
            memory = baseline_memory_circuit(3, em)
            data = sample_detection_data(memory.circuit, shots=500, seed=1)
            rates.append(data.detectors.mean())
        assert rates[1] > 3 * rates[0]

    def test_shot_validation(self):
        c = Circuit()
        c.measure(0)
        with pytest.raises(ValueError):
            FrameSimulator(c, shots=0)


class TestWilson:
    def test_contains_point_estimate(self):
        lo, hi = wilson_interval(10, 100)
        assert lo < 0.1 < hi

    def test_zero_successes(self):
        lo, hi = wilson_interval(0, 100)
        assert lo == 0.0 and hi > 0.0

    def test_validation(self):
        with pytest.raises(ValueError):
            wilson_interval(5, 0)
        with pytest.raises(ValueError):
            wilson_interval(11, 10)
