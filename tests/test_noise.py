"""Tests for the hardware parameters and error model."""

import math

import pytest
from hypothesis import given, strategies as st

from repro.noise import (
    BASELINE_HARDWARE,
    MEMORY_HARDWARE,
    REFERENCE_PHYSICAL_ERROR,
    ErrorModel,
    storage_error_probability,
)


class TestTableI:
    def test_baseline_column(self):
        hw = BASELINE_HARDWARE
        assert hw.t1_transmon == pytest.approx(100e-6)
        assert hw.t1_cavity is None
        assert hw.t_gate_2q == pytest.approx(200e-9)
        assert hw.t_gate_1q == pytest.approx(50e-9)
        assert not hw.has_memory

    def test_memory_column(self):
        hw = MEMORY_HARDWARE
        assert hw.t1_cavity == pytest.approx(1e-3)
        assert hw.t_gate_tm == pytest.approx(200e-9)
        assert hw.t_load_store == pytest.approx(150e-9)
        assert hw.cavity_modes == 10
        assert hw.has_memory

    def test_table_rows_render(self):
        rows = dict(MEMORY_HARDWARE.table_rows())
        assert rows["T1,t"] == "100 us"
        assert rows["T1,c"] == "1 ms"
        assert rows["dl/s"] == "150 ns"
        assert dict(BASELINE_HARDWARE.table_rows())["dl/s"] == "-"

    def test_with_override(self):
        hw = MEMORY_HARDWARE.with_(cavity_modes=30)
        assert hw.cavity_modes == 30
        assert MEMORY_HARDWARE.cavity_modes == 10


class TestStorageError:
    def test_zero_duration(self):
        assert storage_error_probability(0.0, 1e-3) == 0.0

    def test_formula(self):
        assert storage_error_probability(1e-3, 1e-3) == pytest.approx(1 - math.exp(-1))

    def test_monotone_in_duration(self):
        a = storage_error_probability(1e-6, 1e-3)
        b = storage_error_probability(2e-6, 1e-3)
        assert b > a

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            storage_error_probability(-1.0, 1e-3)
        with pytest.raises(ValueError):
            storage_error_probability(1.0, 0.0)

    @given(st.floats(min_value=1e-12, max_value=1.0), st.floats(min_value=1e-9, max_value=10.0))
    def test_always_a_probability(self, duration, t1):
        p = storage_error_probability(duration, t1)
        assert 0.0 <= p <= 1.0


class TestErrorModel:
    def test_single_knob_drives_everything(self):
        em = ErrorModel(hardware=MEMORY_HARDWARE, p=1e-3)
        assert em.one_qubit_error == 1e-3
        assert em.two_qubit_error == 1e-3
        assert em.transmon_mode_error == 1e-3
        assert em.load_store_error == 1e-3
        assert em.measure_error == 1e-3
        assert em.reset_error == 1e-3

    def test_overrides(self):
        em = ErrorModel(hardware=MEMORY_HARDWARE, p=1e-3, p_ls=5e-4)
        assert em.load_store_error == 5e-4
        assert em.two_qubit_error == 1e-3

    def test_coherence_scaling(self):
        # At the reference point T1 equals the table value; at 2x the error
        # rate, T1 halves.
        at_ref = ErrorModel(hardware=MEMORY_HARDWARE, p=REFERENCE_PHYSICAL_ERROR)
        assert at_ref.t1_transmon == pytest.approx(100e-6)
        worse = ErrorModel(hardware=MEMORY_HARDWARE, p=2 * REFERENCE_PHYSICAL_ERROR)
        assert worse.t1_transmon == pytest.approx(50e-6)
        assert worse.t1_cavity == pytest.approx(0.5e-3)

    def test_coherence_pinning(self):
        em = ErrorModel(
            hardware=MEMORY_HARDWARE,
            p=8e-3,
            scale_coherence=False,
            t1_cavity_override=2e-3,
        )
        assert em.t1_transmon == pytest.approx(100e-6)
        assert em.t1_cavity == pytest.approx(2e-3)

    def test_idle_errors_use_right_t1(self):
        em = ErrorModel(hardware=MEMORY_HARDWARE, p=REFERENCE_PHYSICAL_ERROR)
        t = em.transmon_idle_error(1e-6)
        c = em.cavity_idle_error(1e-6)
        assert c < t, "cavity storage must be ~10x more reliable"
        assert t == pytest.approx(1 - math.exp(-1e-6 / 100e-6))

    def test_cavity_idle_without_memory_raises(self):
        em = ErrorModel(hardware=BASELINE_HARDWARE, p=1e-3)
        with pytest.raises(ValueError):
            em.cavity_idle_error(1e-6)

    def test_with_copies(self):
        em = ErrorModel(hardware=MEMORY_HARDWARE, p=1e-3)
        em2 = em.with_(p=2e-3)
        assert em.p == 1e-3 and em2.p == 2e-3
