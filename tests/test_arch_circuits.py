"""Exact-simulator validation of the Natural and Compact memory circuits.

Same methodology as the baseline test: noiseless circuits must produce
deterministic (all-zero) detectors and observables on the tableau
simulator, across random measurement-outcome seeds.
"""

import pytest

from repro.arch import (
    DEFAULT_SPEC,
    ScheduleConflictError,
    compact_memory_circuit,
    natural_memory_circuit,
)
from repro.arch.compact import CompactScheduleSpec
from repro.noise import BASELINE_HARDWARE, MEMORY_HARDWARE, ErrorModel
from repro.stabilizer import TableauSimulator


def noiseless():
    return ErrorModel(hardware=MEMORY_HARDWARE, p=0.0, scale_coherence=False)


def assert_deterministic(memory, seeds=range(4)):
    clean = memory.circuit.without_noise()
    for seed in seeds:
        sim = TableauSimulator(clean.num_qubits, seed=seed)
        record = sim.run(clean)
        for det in clean.detectors:
            value = 0
            for m in det.measurements:
                value ^= record[m]
            assert value == 0, f"detector {det.coord} fired without noise"
        for obs in clean.observables:
            value = 0
            for m in obs.measurements:
                value ^= record[m]
            assert value == 0


@pytest.mark.parametrize("schedule", ["all_at_once", "interleaved"])
@pytest.mark.parametrize("basis", ["Z", "X"])
class TestNoiselessDeterminism:
    def test_natural(self, schedule, basis):
        assert_deterministic(natural_memory_circuit(3, noiseless(), basis=basis, schedule=schedule))

    def test_compact_d3(self, schedule, basis):
        assert_deterministic(compact_memory_circuit(3, noiseless(), basis=basis, schedule=schedule))


@pytest.mark.parametrize("schedule", ["all_at_once", "interleaved"])
def test_compact_d5_exact(schedule):
    assert_deterministic(
        compact_memory_circuit(5, noiseless(), schedule=schedule), seeds=range(2)
    )


class TestStructure:
    def test_natural_loads_and_stores_present(self):
        m = natural_memory_circuit(3, noiseless(), schedule="interleaved")
        assert m.op_counts["LOAD"] >= 3 * 9  # one load of 9 data per round
        assert m.op_counts["STORE"] >= 9

    def test_interleaved_costs_more_loads_than_all_at_once(self):
        # §III-A: interleaving pays d loads/stores per d rounds instead of one.
        aao = natural_memory_circuit(5, noiseless(), schedule="all_at_once")
        inter = natural_memory_circuit(5, noiseless(), schedule="interleaved")
        assert inter.op_counts["LOAD"] > aao.op_counts["LOAD"]
        assert inter.op_counts["STORE"] > aao.op_counts["STORE"]

    def test_compact_interleaved_costs_more_loads(self):
        aao = compact_memory_circuit(5, noiseless(), schedule="all_at_once")
        inter = compact_memory_circuit(5, noiseless(), schedule="interleaved")
        assert inter.op_counts["LOAD"] > aao.op_counts["LOAD"]

    def test_compact_uses_transmon_mode_cnots(self):
        # One mediated CNOT per merged plaquette per round.
        m = compact_memory_circuit(3, noiseless(), rounds=3)
        merged_plaquettes = 8 - 2  # d=3: eight checks, two unmerged
        assert m.op_counts["CXTM"] == 3 * merged_plaquettes

    def test_compact_total_cnots_match_plaquette_corners(self):
        m = compact_memory_circuit(3, noiseless(), rounds=1)
        # d=3: 4 full plaquettes (4 corners) + 4 halves (2 corners) = 24.
        assert m.op_counts["CX"] + m.op_counts["CXTM"] == 24

    def test_natural_gap_scales_with_cavity_depth(self):
        small = noiseless().with_(hardware=MEMORY_HARDWARE.with_(cavity_modes=2))
        big = noiseless().with_(hardware=MEMORY_HARDWARE.with_(cavity_modes=20))
        m_small = natural_memory_circuit(3, small)
        m_big = natural_memory_circuit(3, big)
        assert m_big.duration > m_small.duration

    def test_memory_hardware_required(self):
        model = ErrorModel(hardware=BASELINE_HARDWARE, p=0.0, scale_coherence=False)
        with pytest.raises(ValueError):
            natural_memory_circuit(3, model)
        with pytest.raises(ValueError):
            compact_memory_circuit(3, model)

    def test_bad_schedule_rejected(self):
        with pytest.raises(ValueError):
            natural_memory_circuit(3, noiseless(), schedule="sometimes")

    def test_invalid_spec_raises_conflict(self):
        # The naive baseline orders double-book transmons in Compact.
        bad = CompactScheduleSpec(
            orders={"X": ("NW", "NE", "SW", "SE"), "Z": ("NW", "SW", "NE", "SE")}
        )
        with pytest.raises((ScheduleConflictError, ValueError)):
            compact_memory_circuit(3, noiseless(), spec=bad)


class TestDefaultSpecProperties:
    def test_hook_safety(self):
        # Last two corners visited must be perpendicular to the logical of
        # the same type: horizontal for X checks, vertical for Z checks.
        x_last = DEFAULT_SPEC.orders["X"][2:]
        z_last = DEFAULT_SPEC.orders["Z"][2:]
        horizontal_pairs = [{"NW", "NE"}, {"SW", "SE"}]
        vertical_pairs = [{"NW", "SW"}, {"NE", "SE"}]
        assert set(x_last) in horizontal_pairs
        assert set(z_last) in vertical_pairs

    def test_groups_partition_by_type(self):
        from repro.surface_code import RotatedSurfaceCode

        code = RotatedSurfaceCode(5)
        for p in code.plaquettes:
            g = DEFAULT_SPEC.group_of(p)
            if p.basis == "X":
                assert g in ("A", "B")
            else:
                assert g in ("C", "D")
