"""Property tests for the tiered batched decode dispatcher.

The contract under test: for ANY batch of syndromes, ``decode_batch`` —
dedup, weight-1 table, weight-2 analytic rule, LRU, full decode — returns
element-wise exactly what a plain loop over ``decode`` would, for every
decoder.  Hypothesis drives random batches through both paths, including
the degenerate shapes the tiers special-case: all-zero rows, batches of
only weight-1/weight-2 syndromes, and heavy (>2 event) syndromes.
"""

import numpy as np
import pytest
from hypothesis import HealthCheck, example, given, settings, strategies as st

from repro.decoders import (
    TIER_NAMES,
    MatchingGraph,
    MWPMDecoder,
    UnionFindDecoder,
)
from repro.dem import DetectorErrorModel
from repro.noise import BASELINE_HARDWARE, ErrorModel
from repro.surface_code import baseline_memory_circuit


@pytest.fixture(scope="module")
def decoding_setup():
    model = ErrorModel(hardware=BASELINE_HARDWARE, p=3e-3)
    memory = baseline_memory_circuit(3, model)
    dem = DetectorErrorModel(memory.circuit)
    graph = MatchingGraph.from_dem(dem, "Z")
    return graph, MWPMDecoder(graph), UnionFindDecoder(graph)


def _batch_from_events(event_sets, num_detectors):
    dets = np.zeros((len(event_sets), num_detectors), dtype=bool)
    for row, events in enumerate(event_sets):
        for e in events:
            dets[row, e] = True
    return dets


# Random batches: rows of 0..6 events over the d=3 Z detectors.
_batches = st.lists(
    st.sets(st.integers(0, 11), min_size=0, max_size=6),
    min_size=1,
    max_size=12,
)


class TestTieredEqualsLooped:
    @settings(
        max_examples=60,
        deadline=None,
        suppress_health_check=[HealthCheck.function_scoped_fixture],
    )
    @given(event_sets=_batches)
    @example(event_sets=[set()])  # all-trivial batch
    @example(event_sets=[set(), {3}, {7}, {11}])  # weight-1 only
    @example(event_sets=[{0, 1}, {2, 9}, {4, 5}])  # weight-2 only
    @example(event_sets=[{0, 1, 2, 3, 4, 5}])  # heavy only
    @example(event_sets=[set(), {5}, {1, 2}, {0, 3, 7, 9}, {1, 2}])  # mixed + dup
    @pytest.mark.parametrize("decoder_name", ["mwpm", "unionfind"])
    def test_batch_matches_loop(self, decoding_setup, decoder_name, event_sets):
        graph, mwpm, uf = decoding_setup
        decoder = mwpm if decoder_name == "mwpm" else uf
        dets = _batch_from_events(event_sets, graph.num_detectors)
        batched = decoder.decode_batch(dets)
        looped = np.array(
            [decoder.decode(sorted(events)) for events in event_sets], dtype=np.int64
        )
        np.testing.assert_array_equal(batched, looped)

    @settings(
        max_examples=30,
        deadline=None,
        suppress_health_check=[HealthCheck.function_scoped_fixture],
    )
    @given(event_sets=_batches, seed=st.integers(0, 2**32 - 1))
    def test_row_order_invariance(self, decoding_setup, event_sets, seed):
        graph, _, uf = decoding_setup
        dets = _batch_from_events(event_sets, graph.num_detectors)
        perm = np.random.default_rng(seed).permutation(len(event_sets))
        np.testing.assert_array_equal(
            uf.decode_batch(dets)[perm], uf.decode_batch(dets[perm])
        )

    @settings(
        max_examples=30,
        deadline=None,
        suppress_health_check=[HealthCheck.function_scoped_fixture],
    )
    @given(event_sets=_batches)
    def test_tier_accounting_sums_to_unique(self, decoding_setup, event_sets):
        graph, _, uf = decoding_setup
        dets = _batch_from_events(event_sets, graph.num_detectors)
        uf.decode_batch(dets)
        stats = uf.last_batch_stats
        assert sum(stats[t] for t in TIER_NAMES) == stats["unique"]
        assert stats["unique"] == len({frozenset(s) for s in event_sets})
        assert stats["shots"] == len(event_sets)


class TestAnalyticTiersAreExact:
    """The table tiers must be provably identical to the full decoder."""

    def test_mwpm_weight1_table_is_decode(self, decoding_setup):
        graph, mwpm, _ = decoding_setup
        table = mwpm._build_weight1_table()
        for det in range(graph.num_detectors):
            assert int(table[det]) == mwpm.decode([det])

    def test_mwpm_weight2_rule_is_decode(self, decoding_setup):
        graph, mwpm, _ = decoding_setup
        n = graph.num_detectors
        pairs = [(u, v) for u in range(n) for v in range(u + 1, n)]
        u = np.array([p[0] for p in pairs])
        v = np.array([p[1] for p in pairs])
        analytic = mwpm._decode_weight2_batch(u, v)
        for (a, b), prediction in zip(pairs, analytic):
            assert int(prediction) == mwpm.decode([a, b]), (a, b)

    def test_unionfind_weight1_default_table_is_decode(self, decoding_setup):
        graph, _, uf = decoding_setup
        table = uf._weight1_predictions(np.arange(graph.num_detectors))
        for det in range(graph.num_detectors):
            assert int(table[det]) == uf.decode([det])

    def test_weight1_table_only_builds_observed_detectors(self):
        # A detector whose solo syndrome is undecodable (no path anywhere)
        # must not break batches that never fire it.
        graph = MatchingGraph(2, "Z")
        graph.add_edge(0, graph.boundary, 0.01, 1)
        uf = UnionFindDecoder(graph)
        with pytest.raises(RuntimeError):
            uf.decode([1])  # isolated detector: growth cannot terminate
        dets = np.array([[True, False], [False, False]])
        np.testing.assert_array_equal(uf.decode_batch(dets), [1, 0])

    def test_unionfind_has_no_weight2_shortcut(self, decoding_setup):
        # Union-find peel ties have no closed form; the base class must
        # route its weight-2 syndromes through the full tier.
        graph, _, uf = decoding_setup
        assert uf._decode_weight2_batch(np.array([0]), np.array([1])) is None


class TestLRU:
    def _fresh_uf(self):
        model = ErrorModel(hardware=BASELINE_HARDWARE, p=3e-3)
        memory = baseline_memory_circuit(3, model)
        dem = DetectorErrorModel(memory.circuit)
        return UnionFindDecoder(MatchingGraph.from_dem(dem, "Z"))

    def test_repeat_batches_hit_cache_with_identical_results(self):
        uf = self._fresh_uf()
        rng = np.random.default_rng(0)
        dets = rng.random((64, uf.graph.num_detectors)) < 0.25
        first = uf.decode_batch(dets)
        # Union-find's heavy uniques decode through the lockstep kernel;
        # on a fresh decoder every one is an LRU miss.
        heavy_unique = len({row.tobytes() for row in dets if row.sum() > 1})
        assert uf.last_batch_stats["batched"] == heavy_unique
        assert uf.last_batch_stats["full"] == 0
        assert uf.last_batch_stats["lru_misses"] == heavy_unique
        second = uf.decode_batch(dets)
        # ...and the kernel's results landed in the LRU, so repeats are
        # served entirely from the cached tier.
        assert uf.last_batch_stats["batched"] == 0
        assert uf.last_batch_stats["full"] == 0
        assert uf.last_batch_stats["cached"] == heavy_unique
        assert uf.last_batch_stats["lru_hits"] == heavy_unique
        np.testing.assert_array_equal(first, second)

    def test_capacity_bound_holds_and_evicts_lru_order(self):
        uf = self._fresh_uf()
        uf.lru_capacity = 8
        rng = np.random.default_rng(1)
        for _ in range(12):
            dets = rng.random((32, uf.graph.num_detectors)) < 0.3
            uf.decode_batch(dets)
            assert len(uf._lru) <= 8

    def test_eviction_never_changes_results(self):
        bounded, unbounded = self._fresh_uf(), self._fresh_uf()
        bounded.lru_capacity = 4
        rng = np.random.default_rng(2)
        batches = [rng.random((24, bounded.graph.num_detectors)) < 0.3 for _ in range(6)]
        for dets in batches:
            np.testing.assert_array_equal(
                bounded.decode_batch(dets), unbounded.decode_batch(dets)
            )
