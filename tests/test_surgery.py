"""Tests for lattice surgery, transversal CNOT and process tomography."""

import numpy as np
import pytest

from repro.surgery import (
    CNOT_TIMESTEPS_LATTICE_SURGERY,
    CNOT_TIMESTEPS_TRANSVERSAL,
    SurgeryLab,
    lattice_surgery_cnot,
    tomography_of_lattice_surgery_cnot,
    tomography_of_transversal_cnot,
    transversal_cnot,
)
from repro.surgery.algebra import gf2_solve
from repro.surgery.physical import VerticalPair


def make_lab(distance, n_patches, seed=0, extra=0):
    lab = SurgeryLab(distance * distance * n_patches + extra, seed=seed)
    patches = [lab.allocate_patch(f"p{i}", distance) for i in range(n_patches)]
    for p in patches:
        lab.encode_zero(p)
    return lab, patches


class TestPatchEncoding:
    def test_encode_zero_stabilizes(self):
        lab, (p,) = make_lab(3, 1)
        assert lab.check_codespace(p)
        assert lab.logical_expectation(p, "Z") == 1

    def test_logical_x_flips_z(self):
        lab, (p,) = make_lab(3, 1)
        lab.apply_logical(p, "X")
        assert lab.logical_expectation(p, "Z") == -1
        assert lab.check_codespace(p)

    def test_logical_measurement(self):
        lab, (p,) = make_lab(3, 1, seed=2)
        assert lab.measure_logical(p, "Z") == 0
        lab.apply_logical(p, "X")
        assert lab.measure_logical(p, "Z") == 1

    def test_register_exhaustion(self):
        lab = SurgeryLab(5)
        with pytest.raises(ValueError):
            lab.allocate_patch("big", 3)


class TestTransversalCNOT:
    @pytest.mark.parametrize("d", [2, 3])
    def test_truth_table(self, d):
        for a in (0, 1):
            for b in (0, 1):
                lab, (c, t) = make_lab(d, 2, seed=a * 2 + b)
                if a:
                    lab.apply_logical(c, "X")
                if b:
                    lab.apply_logical(t, "X")
                transversal_cnot(lab, c, t)
                assert lab.measure_logical(c, "Z") == a
                assert lab.measure_logical(t, "Z") == a ^ b
                assert lab.check_codespace(c) and lab.check_codespace(t)

    def test_phase_kickback(self):
        # CNOT with target |->: control picks up the phase.
        lab, (c, t) = make_lab(3, 2, seed=1)
        lab.sim.measure_pauli(c.logical_x(), forced_outcome=0)  # control |+>
        lab.sim.measure_pauli(t.logical_x(), forced_outcome=1)  # target |->
        transversal_cnot(lab, c, t)
        assert lab.logical_expectation(c, "X") == -1

    def test_tomography_confirms_cnot(self):
        process_map, is_cnot = tomography_of_transversal_cnot(distance=3, seed=0)
        assert is_cnot
        assert process_map["X0"] == (1, "XX")
        assert process_map["Z1"] == (1, "ZZ")

    def test_distance_mismatch_rejected(self):
        lab = SurgeryLab(9 + 4, seed=0)
        a = lab.allocate_patch("a", 3)
        b = lab.allocate_patch("b", 2)
        with pytest.raises(ValueError):
            transversal_cnot(lab, a, b)

    def test_costs_paper_ratio(self):
        # §III-B: "6x better than a lattice surgery CNOT".
        assert CNOT_TIMESTEPS_LATTICE_SURGERY // CNOT_TIMESTEPS_TRANSVERSAL == 6


class TestLatticeSurgeryCNOT:
    @pytest.mark.parametrize("seed", range(6))
    def test_truth_table_all_outcome_branches(self, seed):
        for a in (0, 1):
            for b in (0, 1):
                lab, (c, t, anc) = make_lab(3, 3, seed=seed + 10 * (2 * a + b))
                if a:
                    lab.apply_logical(c, "X")
                if b:
                    lab.apply_logical(t, "X")
                record = lattice_surgery_cnot(lab, c, t, anc)
                assert record["timesteps"] == 6
                assert lab.measure_logical(c, "Z") == a
                assert lab.measure_logical(t, "Z") == a ^ b

    @pytest.mark.parametrize("seed", range(4))
    def test_tomography_confirms_cnot(self, seed):
        _, is_cnot = tomography_of_lattice_surgery_cnot(distance=3, seed=seed)
        assert is_cnot

    def test_entangles_plus_control(self):
        lab, (c, t, anc) = make_lab(3, 3, seed=3)
        lab.sim.measure_pauli(c.logical_x(), forced_outcome=0)  # |+>
        lattice_surgery_cnot(lab, c, t, anc)
        # Bell state: X⊗X and Z⊗Z both +1.
        joint_x = c.logical_x() * t.logical_x()
        joint_z = c.logical_z() * t.logical_z()
        assert lab.sim.peek_pauli_expectation(joint_x) == 1
        assert lab.sim.peek_pauli_expectation(joint_z) == 1


class TestGF2:
    def test_simple_solve(self):
        gens = [np.array([1, 1, 0]), np.array([0, 1, 1])]
        x = gf2_solve(gens, np.array([1, 0, 1]))
        assert x is not None and list(x) == [1, 1]

    def test_unsolvable(self):
        gens = [np.array([1, 1, 0])]
        assert gf2_solve(gens, np.array([0, 0, 1])) is None

    def test_empty_generators(self):
        assert gf2_solve([], np.array([1])) is None

    def test_length_mismatch(self):
        with pytest.raises(ValueError):
            gf2_solve([np.array([1, 0])], np.array([1, 0, 0]))


class TestPhysicalMergeSplit:
    @pytest.mark.parametrize("d", [2, 3])
    @pytest.mark.parametrize("states", [(0, 0), (0, 1), (1, 0), (1, 1)])
    def test_merge_outcome_is_joint_parity(self, d, states):
        a, b = states
        lab = SurgeryLab(2 * d * d + d, seed=7 * a + b)
        pair = VerticalPair.allocate(lab, d)
        lab.encode_zero(pair.top)
        lab.encode_zero(pair.bottom)
        if a:
            lab.apply_logical(pair.top, "X")
        if b:
            lab.apply_logical(pair.bottom, "X")
        assert pair.merge() == a ^ b

    @pytest.mark.parametrize("seed", range(6))
    def test_merge_split_is_mzz_instrument(self, seed):
        # On |++> the instrument must output a random m and leave the Bell
        # pair stabilized by X⊗X = +1 and Z⊗Z = (−1)^m.
        d = 3
        lab = SurgeryLab(2 * d * d + d, seed=seed)
        pair = VerticalPair.allocate(lab, d)
        lab.encode_zero(pair.top)
        lab.encode_zero(pair.bottom)
        lab.sim.measure_pauli(pair.top.logical_x(), forced_outcome=0)
        lab.sim.measure_pauli(pair.bottom.logical_x(), forced_outcome=0)
        m = pair.merge()
        pair.split()
        joint_x = pair.top.logical_x() * pair.bottom.logical_x()
        joint_z = pair.top.logical_z() * pair.bottom.logical_z()
        assert lab.sim.peek_pauli_expectation(joint_x) == 1
        assert lab.sim.peek_pauli_expectation(joint_z) == (1 - 2 * m)
        assert lab.check_codespace(pair.top)
        assert lab.check_codespace(pair.bottom)

    def test_split_restores_codespaces(self):
        d = 3
        lab = SurgeryLab(2 * d * d + d, seed=11)
        pair = VerticalPair.allocate(lab, d)
        lab.encode_zero(pair.top)
        lab.encode_zero(pair.bottom)
        pair.merge()
        pair.split()
        assert lab.check_codespace(pair.top)
        assert lab.check_codespace(pair.bottom)

    def test_distance_mismatch_rejected(self):
        lab = SurgeryLab(9 + 4 + 3, seed=0)
        top = lab.allocate_patch("t", 3)
        bottom = lab.allocate_patch("b", 2)
        with pytest.raises(ValueError):
            VerticalPair(lab, top, bottom, [lab.allocate_bare() for _ in range(3)])
