"""Tests for the static-analysis subsystem (``repro.analyze``).

Three pillars:

* **Agreement** — the symbolic GF(2) determinism proof must agree with
  the sampled stabilizer-tableau oracle on every lowered shape the
  campaign produces (single-qubit and merged-patch joint circuits, both
  embeddings, both bases).
* **Seeded defects** — every mutation in the corpus (stray gate before a
  final measurement, dropped reset, starved refresh deadline, orphaned
  detector, zeroed weight, skewed union-find mirror) must be flagged
  with its expected diagnostic code.
* **Matrix** — the ``repro lint`` driver runs green over the preset
  matrix (the same gate CI enforces).
"""

import pytest

from repro.analyze import (
    CODES,
    Diagnostic,
    LintReport,
    SymbolicCertificationError,
    certify_deterministic,
    lint_graph,
    lint_matrix,
    lint_schedule,
    propagate,
    static_refresh_violations,
    verify_circuit,
)
from repro.analyze.schedule import _static_violation_ticks
from repro.circuits import Circuit
from repro.core import Machine, compile_program
from repro.core.program import LogicalProgram
from repro.decoders import MatchingGraph, UnionFindDecoder
from repro.dem import DetectorErrorModel
from repro.noise import MEMORY_HARDWARE, ErrorModel
from repro.stabilizer import TableauSimulator
from repro.surface_code import baseline_memory_circuit
from repro.vlq.campaign import run_program_experiment
from repro.vlq.lowering import LoweringSpec, lower_timeline
from repro.vlq.surgery import (
    JointCertificationError,
    JointLoweringSpec,
    certify_joint_deterministic,
    lower_joint_timelines,
    partition_surgery,
)


@pytest.fixture(scope="module")
def error_model():
    return ErrorModel(hardware=MEMORY_HARDWARE, p=2e-3, scale_coherence=False)


@pytest.fixture(scope="module")
def surgery_schedule():
    machine = Machine(stack_grid=(2, 2), cavity_modes=10, distance=3,
                      embedding="compact")
    return compile_program(
        LogicalProgram.ghz(4), machine, policy="surgery_only"
    ), machine


def _oracle_agrees(circuit, seeds=(0, 1)):
    """The sampled-tableau verdict: True iff all detectors/observables 0."""
    clean = circuit.without_noise()
    for seed in seeds:
        record = TableauSimulator(clean.num_qubits, seed=seed).run(clean)
        for det in clean.detectors:
            value = 0
            for m in det.measurements:
                value ^= record[m]
            if value:
                return False
        for obs in clean.observables:
            value = 0
            for m in obs.measurements:
                value ^= record[m]
            if value:
                return False
    return True


# ----------------------------------------------------------------------
# Symbolic engine
# ----------------------------------------------------------------------
class TestSymbolic:
    def test_ghz_measurements_share_one_variable(self):
        c = Circuit(2)
        c.h(0)
        c.cx(0, 1)
        c.measure(0, 1)
        run = propagate(c)
        # Both outcomes are the same fresh random bit: their XOR is 0.
        assert run.expression([0]) == run.expression([1])
        assert run.expression([0, 1]) == 0

    def test_reset_kills_randomness(self):
        c = Circuit(1)
        c.h(0)
        c.measure(0)
        c.reset(0)
        c.measure(0)
        run = propagate(c)
        assert run.expression([1]) == 0  # post-reset outcome is fixed 0

    def test_strict_init_exposes_initial_state(self):
        c = Circuit(1)
        c.measure(0)  # no reset first: outcome IS the initial state
        run = propagate(c, strict_init=True)
        assert run.expression([0]) != 0

    @pytest.mark.parametrize("embedding", ["natural", "compact"])
    @pytest.mark.parametrize("basis", ["Z", "X"])
    def test_memory_circuit_proven_deterministic(self, embedding, basis,
                                                 error_model):
        machine = Machine(stack_grid=(1, 1), cavity_modes=10, distance=3,
                          embedding=embedding)
        schedule = compile_program(LogicalProgram().alloc(0), machine)
        spec = LoweringSpec(distance=3, embedding=embedding, basis=basis)
        lowered = lower_timeline(schedule.qubit_timeline(0), error_model, spec)
        assert verify_circuit(lowered.circuit, strict_init=True) == []

    def test_culprit_reported_for_stray_h(self, error_model):
        memory = baseline_memory_circuit(3, error_model)
        circuit = memory.circuit.without_noise()
        # A stray Hadamard right before the final data measurements makes
        # them random; the proof must name the random measurement.
        last_measure = max(
            i for i, ins in enumerate(circuit.instructions) if ins.name == "M"
        )
        circuit.instructions.insert(
            last_measure, circuit.instructions[0].__class__(
                "H", (circuit.instructions[last_measure].targets[0],), ()
            )
        )
        findings = verify_circuit(circuit)
        assert findings and all(f.code == "SYM001" for f in findings)
        assert any("random measurement" in f.message for f in findings)
        with pytest.raises(SymbolicCertificationError):
            certify_deterministic(circuit)

    def test_stray_x_fires_deterministically(self, error_model):
        memory = baseline_memory_circuit(3, error_model)
        circuit = memory.circuit.without_noise()
        last_measure = max(
            i for i, ins in enumerate(circuit.instructions) if ins.name == "M"
        )
        circuit.instructions.insert(
            last_measure, circuit.instructions[0].__class__(
                "X", (circuit.instructions[last_measure].targets[0],), ()
            )
        )
        findings = verify_circuit(circuit)
        assert findings and {f.code for f in findings} == {"SYM002"}

    def test_dropped_reset_found_in_strict_mode(self, error_model):
        memory = baseline_memory_circuit(3, error_model)
        circuit = memory.circuit.without_noise()
        first_reset = next(
            i for i, ins in enumerate(circuit.instructions) if ins.name == "R"
        )
        del circuit.instructions[first_reset]
        # Plain mode still passes (the simulator defaults qubits to |0>)...
        assert verify_circuit(circuit) == []
        # ...strict mode proves determinism for EVERY input state, so the
        # missing reset surfaces as initial-state dependence.
        findings = verify_circuit(circuit, strict_init=True)
        assert findings and {f.code for f in findings} == {"SYM003"}


# ----------------------------------------------------------------------
# Symbolic vs tableau-oracle agreement (pinned)
# ----------------------------------------------------------------------
class TestOracleAgreement:
    @pytest.mark.parametrize("embedding", ["natural", "compact"])
    def test_joint_shapes_agree_with_oracle(self, embedding, error_model):
        machine = Machine(stack_grid=(2, 2), cavity_modes=10, distance=3,
                          embedding=embedding)
        schedule = compile_program(
            LogicalProgram.bell_pairs(4), machine, policy="surgery_only"
        )
        jspec = JointLoweringSpec(distance=3, embedding=embedding, basis="Z")
        partition = partition_surgery(schedule)
        assert partition.pairs, "surgery_only bell pairs must produce joint pairs"
        for (qa, qb), spans in partition.pairs:
            lowered = lower_joint_timelines(
                schedule.qubit_timeline(qa), schedule.qubit_timeline(qb),
                spans, error_model, jspec,
            )
            symbolic_ok = verify_circuit(lowered.circuit) == []
            assert symbolic_ok == _oracle_agrees(lowered.circuit)
            assert symbolic_ok  # and both say: deterministic
            # the certify entry point agrees too, oracle included
            certify_joint_deterministic(lowered, oracle=True)

    def test_single_shapes_agree_with_oracle(self, surgery_schedule,
                                             error_model):
        schedule, machine = surgery_schedule
        spec = LoweringSpec(distance=3, embedding=machine.embedding, basis="Z")
        for qubit in sorted(schedule.residences):
            lowered = lower_timeline(schedule.qubit_timeline(qubit), error_model, spec)
            symbolic_ok = verify_circuit(lowered.circuit) == []
            assert symbolic_ok == _oracle_agrees(lowered.circuit)
            assert symbolic_ok

    def test_broken_circuit_rejected_by_both(self, error_model):
        memory = baseline_memory_circuit(3, error_model)
        circuit = memory.circuit.without_noise()
        last_measure = max(
            i for i, ins in enumerate(circuit.instructions) if ins.name == "M"
        )
        circuit.instructions.insert(
            last_measure, circuit.instructions[0].__class__(
                "X", (circuit.instructions[last_measure].targets[0],), ()
            )
        )
        assert verify_circuit(circuit) != []
        assert not _oracle_agrees(circuit)

    def test_campaign_certifies_via_symbolic_path(self, error_model):
        machine = Machine(stack_grid=(2, 2), cavity_modes=10, distance=3,
                          embedding="compact")
        result = run_program_experiment(
            LogicalProgram.bell_pairs(4), machine, error_model, shots=20,
            policy="surgery_only", correlated=True, oracle_cert=True,
        )
        assert result.pieces is not None
        assert any(len(piece.qubits) == 2 for piece in result.pieces)


# ----------------------------------------------------------------------
# Schedule analysis
# ----------------------------------------------------------------------
class TestSchedule:
    def test_good_schedule_is_clean(self, surgery_schedule):
        schedule, _ = surgery_schedule
        assert lint_schedule(schedule) == []

    def test_static_audit_matches_replay_everywhere(self):
        for policy in ("auto", "surgery_only"):
            for insert_refresh in (True, False):
                machine = Machine(stack_grid=(2, 2), cavity_modes=10,
                                  distance=3, embedding="compact")
                schedule = compile_program(
                    LogicalProgram.ghz(6), machine, policy=policy,
                    insert_refresh=insert_refresh,
                )
                assert (
                    _static_violation_ticks(schedule)
                    == schedule.refresh_violations
                )

    def test_k3_starvation_is_static_sch003(self):
        # The k<6 starvation class found dynamically in PR 4: a 6-step
        # surgery CNOT on a k=3 stack makes the deadline unserviceable.
        machine = Machine(stack_grid=(2, 2), cavity_modes=3, distance=3,
                          embedding="compact")
        schedule = compile_program(
            LogicalProgram.ghz(6), machine, policy="surgery_only"
        )
        assert schedule.refresh_violations > 0
        violations = static_refresh_violations(schedule)
        assert violations, "static analysis must find the starvation"
        qubit, first_t, staleness, deadline = violations[0]
        assert deadline == 3 and staleness > deadline
        findings = lint_schedule(schedule)
        codes = {f.code for f in findings}
        assert codes == {"SCH003"}  # and NOT SCH005: static == replay
        assert any("structurally unserviceable" in f.message for f in findings)

    def test_skewed_deadline_flagged(self, surgery_schedule):
        schedule, _ = surgery_schedule
        # Skew the replay record: pretend the audit saw no violations
        # while removing a refresh, so static and replay disagree.
        qubit = next(q for q in sorted(schedule.refresh_times)
                     if schedule.refresh_times[q])
        saved_times = schedule.refresh_times
        saved_violations = schedule.refresh_violations
        try:
            schedule.refresh_times = {
                q: ([] if q == qubit else list(ts))
                for q, ts in saved_times.items()
            }
            findings = lint_schedule(schedule)
            codes = {f.code for f in findings}
            assert "SCH003" in codes or "SCH005" in codes
        finally:
            schedule.refresh_times = saved_times
            schedule.refresh_violations = saved_violations

    def test_capacity_overflow_flagged(self, surgery_schedule):
        schedule, _ = surgery_schedule
        # Move every qubit's first residence onto one stack.
        saved = schedule.residences
        stack = next(iter(saved.values()))[0].stack
        crowded = {
            q: [ivs[0].__class__(stack, ivs[0].start, ivs[0].end)]
            + list(ivs[1:])
            for q, ivs in saved.items()
        }
        # Build a machine with capacity 1 view by monkeypatching modes.
        try:
            schedule.residences = crowded
            object.__setattr__(schedule.machine, "cavity_modes", 1)
            findings = lint_schedule(schedule)
            assert "SCH001" in {f.code for f in findings}
        finally:
            schedule.residences = saved
            object.__setattr__(schedule.machine, "cavity_modes", 10)

    def test_double_booked_qubit_flagged(self, surgery_schedule):
        schedule, _ = surgery_schedule
        events = schedule.events
        long_event = next(e for e in events if e.duration >= 2)
        clone = long_event.__class__(
            start=long_event.start,
            duration=long_event.duration,
            name="PHANTOM",
            qubits=long_event.qubits,
            stacks=long_event.stacks,
        )
        try:
            schedule.events = list(events) + [clone]
            findings = lint_schedule(schedule)
            assert "SCH002" in {f.code for f in findings}
        finally:
            schedule.events = events


# ----------------------------------------------------------------------
# Graph analysis
# ----------------------------------------------------------------------
class TestGraph:
    @pytest.fixture(scope="class")
    def setup(self):
        model = ErrorModel(hardware=MEMORY_HARDWARE, p=2e-3,
                           scale_coherence=False)
        memory = baseline_memory_circuit(3, model)
        dem = DetectorErrorModel(memory.circuit)
        return dem, MatchingGraph.from_dem(dem, "Z")

    def _fresh(self, dem):
        return MatchingGraph.from_dem(dem, "Z")

    def test_good_graph_is_clean(self, setup):
        dem, graph = setup
        decoder = UnionFindDecoder(graph)
        assert lint_graph(graph, dem, "Z", decoder) == []

    def test_orphaned_detector_flagged(self, setup):
        dem, _ = setup
        graph = self._fresh(dem)
        keep = [e for e in graph.edges if 0 not in (e.u, e.v)]
        graph.edges = keep
        graph._edge_index = {
            (min(e.u, e.v), max(e.u, e.v)): i for i, e in enumerate(keep)
        }
        codes = {f.code for f in lint_graph(graph, dem, "Z")}
        assert "GRF001" in codes  # detector 0 cannot reach the boundary
        assert "GRF004" in codes  # its faults are no longer covered

    def test_zeroed_weight_flagged(self, setup):
        dem, _ = setup
        graph = self._fresh(dem)
        graph.edges[0].probability = 0.5  # weight ln(1) = 0
        codes = {f.code for f in lint_graph(graph)}
        assert codes == {"GRF002"}

    def test_negative_probability_flagged(self, setup):
        dem, _ = setup
        graph = self._fresh(dem)
        graph.edges[0].probability = 0.0
        codes = {f.code for f in lint_graph(graph)}
        assert codes == {"GRF002"}

    def test_skewed_mirror_flagged(self, setup):
        dem, _ = setup
        graph = self._fresh(dem)
        decoder = UnionFindDecoder(graph)
        decoder._eobs[1] ^= 1
        findings = lint_graph(graph, decoder=decoder)
        assert {f.code for f in findings} == {"GRF003"}
        assert any("_eobs" in f.message for f in findings)

    def test_skewed_csr_flagged(self, setup):
        dem, _ = setup
        graph = self._fresh(dem)
        decoder = UnionFindDecoder(graph)
        decoder.adj_other[0] += 1
        assert {f.code for f in lint_graph(graph, decoder=decoder)} == {"GRF003"}

    def test_batched_kernel_clean_and_copy_flagged(self, setup):
        dem, _ = setup
        graph = self._fresh(dem)
        decoder = UnionFindDecoder(graph)
        kernel = decoder.batched_kernel()
        assert kernel is not None
        assert lint_graph(graph, decoder=decoder) == []
        # A copied (non-shared) edge array breaks the bit-identity
        # contract even while its contents still agree.
        kernel.lengths = kernel.lengths.copy()
        findings = lint_graph(graph, decoder=decoder)
        assert {f.code for f in findings} == {"GRF003"}
        assert any("batched" in f.location for f in findings)

    def test_batched_kernel_skewed_csr_flagged(self, setup):
        dem, _ = setup
        graph = self._fresh(dem)
        decoder = UnionFindDecoder(graph)
        kernel = decoder.batched_kernel()
        kernel._adj_other[0] += 1
        findings = lint_graph(graph, decoder=decoder)
        assert {f.code for f in findings} == {"GRF003"}
        assert any("batched.adj" in f.location for f in findings)


# ----------------------------------------------------------------------
# Diagnostics plumbing + driver
# ----------------------------------------------------------------------
class TestDriver:
    def test_diagnostic_rejects_unknown_code(self):
        with pytest.raises(ValueError):
            Diagnostic("XXX999", "error", "here", "nope")
        with pytest.raises(ValueError):
            Diagnostic("SYM001", "fatal", "here", "nope")

    def test_report_roundtrip(self):
        report = LintReport()
        report.extend([Diagnostic("SYM001", "error", "a", "b")])
        report.count("schedules", 3)
        data = report.to_dict()
        assert data["errors"] == 1 and not data["ok"]
        assert data["checked"] == {"schedules": 3}
        assert "SYM001" in report.format_text()
        assert all(code in CODES for code in {"SYM001", "SCH003", "GRF004"})

    def test_lint_matrix_green(self):
        report = lint_matrix(
            programs=("pairs",), distances=(3,), embeddings=("compact",)
        )
        assert report.ok, report.format_text()
        assert report.checked["schedules"] == 2
        assert report.checked["circuit_shapes"] > 0
        assert report.checked["joint_shapes"] > 0
        assert report.checked["graphs"] > 0

    def test_certify_joint_raises_joint_error(self, error_model):
        machine = Machine(stack_grid=(2, 2), cavity_modes=10, distance=3,
                          embedding="compact")
        schedule = compile_program(
            LogicalProgram.bell_pairs(4), machine, policy="surgery_only"
        )
        jspec = JointLoweringSpec(distance=3, embedding="compact", basis="Z")
        (qa, qb), spans = partition_surgery(schedule).pairs[0]
        lowered = lower_joint_timelines(
            schedule.qubit_timeline(qa), schedule.qubit_timeline(qb),
            spans, error_model, jspec,
        )
        last_measure = max(
            i for i, ins in enumerate(lowered.circuit.instructions)
            if ins.name == "M"
        )
        lowered.circuit.instructions.insert(
            last_measure, lowered.circuit.instructions[0].__class__(
                "H", (lowered.circuit.instructions[last_measure].targets[0],),
                (),
            )
        )
        with pytest.raises(JointCertificationError):
            certify_joint_deterministic(lowered)
