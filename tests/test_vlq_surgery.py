"""Tests for the joint-window lattice-surgery subsystem (repro.vlq.surgery).

Four layers are covered:

* **geometry** — the merged rectangular patch's plaquette classification
  (interior / upgraded / seam-born) is construction-verified against the
  standalone layouts, and the timeline phasing around surgery windows;
* **lowering** — merged-patch circuits are certified deterministic
  (every detector and both per-patch observables) on the exact
  stabilizer simulator for both embeddings, both bases, multiple
  windows and the paper clock;
* **factorization** — with the surgery-window noise channels zeroed the
  joint detector error model contains no cross-patch mechanism and the
  joint decode agrees shot-for-shot with independently decoded patches
  (the p→0 limit in which the joint estimate equals the independence
  product);
* **campaign** — correlated runs are bit-identical across worker counts
  on both backends, leave the independent per-qubit estimates untouched,
  share joint shapes through their caches, and fall back to independent
  pieces for surgery components larger than a pair.
"""

from functools import lru_cache

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core import LogicalProgram, Machine, compile_program
from repro.decoders import TIER_NAMES
from repro.noise import MEMORY_HARDWARE, ErrorModel
from repro.sim import make_sampler, prepare_decoding
from repro.threshold import estimate_program_threshold
from repro.vlq import (
    JointLoweringSpec,
    MergedPatchLayout,
    build_program,
    certify_joint_deterministic,
    compare_architectures,
    joint_shape,
    lower_joint_timelines,
    partition_surgery,
    run_program_experiment,
)


def _machine(embedding="compact", grid=(1, 1), modes=10, distance=3):
    return Machine(
        stack_grid=grid, cavity_modes=modes, distance=distance, embedding=embedding
    )


def _model(p=2e-3):
    return ErrorModel(hardware=MEMORY_HARDWARE, p=p, scale_coherence=False)


def _surgery_pair(program, machine, policy="surgery_only"):
    schedule = compile_program(program, machine, policy=policy)
    partition = partition_surgery(schedule)
    (qa, qb), spans = partition.pairs[0]
    return schedule.qubit_timeline(qa), schedule.qubit_timeline(qb), spans, schedule


class TestMergedPatchLayout:
    @pytest.mark.parametrize("basis", ["Z", "X"])
    @pytest.mark.parametrize("distance", [3, 5])
    def test_classification_covers_and_verifies(self, basis, distance):
        layout = MergedPatchLayout(distance, basis)
        kinds = {"interior": 0, "upgraded": 0, "seam": 0}
        for p in layout.merged.plaquettes:
            kind, side, local_cell = layout.info[p.cell]
            kinds[kind] += 1
            if kind != "seam":
                assert side in ("a", "b")
                assert local_cell in {q.cell for q in layout.local.plaquettes}
        # Every standalone plaquette of each patch continues (interior)
        # or grows across the seam (upgraded): a bijection per side.
        assert kinds["interior"] + kinds["upgraded"] == 2 * len(layout.local.plaquettes)
        # The upgraded halves face the seam: exactly d-1 per patch (the
        # boundary half-checks of the non-memory basis on the merge edge).
        assert kinds["upgraded"] == distance - 1
        assert kinds["seam"] > 0
        assert len(layout.seam_coords) == distance

    def test_merge_axis_follows_basis(self):
        z = MergedPatchLayout(3, "Z")
        x = MergedPatchLayout(3, "X")
        assert (z.merged.rows, z.merged.cols) == (7, 3)
        assert (x.merged.rows, x.merged.cols) == (3, 7)
        assert z.seam_basis == "X" and x.seam_basis == "Z"
        assert z.merged.distance == 3 and x.merged.distance == 3

    def test_rejects_even_distance(self):
        with pytest.raises(ValueError, match="odd"):
            MergedPatchLayout(4, "Z")
        with pytest.raises(ValueError, match="odd"):
            JointLoweringSpec(distance=4, embedding="natural")

    def test_coordinate_round_trip(self):
        layout = MergedPatchLayout(3, "Z")
        for coord in layout.merged.data_coords:
            side = layout.side_of_coord(coord)
            if side == "seam":
                continue
            assert layout.to_merged(layout.to_local(coord, side), side) == coord


class TestPhasedSegments:
    def test_phases_bracket_windows(self):
        ta, tb, spans, _ = _surgery_pair(LogicalProgram.bell_pairs(2), _machine())
        assert len(spans) == 1
        phases = ta.phased_segments(spans)
        assert len(phases) == 2
        # the window itself contributes no segments; everything else does
        flat = [s for phase in phases for s in phase]
        total = sum(s[1] if s[0] in ("rounds", "idle") else 1 for s in flat)
        window_steps = sum(e - s for s, e in spans)
        plain = ta.segments()
        plain_total = sum(s[1] if s[0] in ("rounds", "idle") else 1 for s in plain)
        assert total == plain_total - window_steps

    def test_multi_window_phase_count(self):
        program = LogicalProgram().alloc(0, 1)
        for _ in range(3):
            program.cnot(0, 1)
        ta, tb, spans, _ = _surgery_pair(program, _machine())
        assert len(spans) == 3
        assert len(ta.phased_segments(spans)) == 4
        assert len(tb.phased_segments(spans)) == 4

    def test_unmatched_window_raises(self):
        schedule = compile_program(LogicalProgram.bell_pairs(2), _machine())
        timeline = schedule.qubit_timeline(0)
        with pytest.raises(ValueError, match="match no scheduled"):
            timeline.phased_segments(((100, 106),))

    def test_overlapping_windows_raise(self):
        schedule = compile_program(LogicalProgram.bell_pairs(2), _machine())
        timeline = schedule.qubit_timeline(0)
        with pytest.raises(ValueError, match="overlap"):
            timeline.phased_segments(((2, 8), (5, 11)))

    def test_segments_equals_unphased(self):
        schedule = compile_program(LogicalProgram.bell_pairs(4), _machine(grid=(2, 2)))
        for q in range(4):
            timeline = schedule.qubit_timeline(q)
            assert timeline.phased_segments(()) == (timeline.segments(),)


class TestJointLowering:
    @pytest.mark.parametrize("embedding", ["natural", "compact"])
    @pytest.mark.parametrize("basis", ["Z", "X"])
    def test_noiseless_joint_lowering_is_deterministic(self, embedding, basis):
        """Acceptance: the exact-simulator certificate for both embeddings."""
        ta, tb, spans, _ = _surgery_pair(
            LogicalProgram.bell_pairs(2), _machine(embedding=embedding)
        )
        spec = JointLoweringSpec(distance=3, embedding=embedding, basis=basis)
        memory = lower_joint_timelines(ta, tb, spans, _model(), spec)
        certify_joint_deterministic(memory)
        assert memory.circuit.num_observables == 2
        assert memory.windows == 1

    @pytest.mark.parametrize("embedding", ["natural", "compact"])
    def test_multi_window_with_stored_bystanders_certifies(self, embedding):
        """Repeated merges/splits of the same pair, with other qubits
        stored on the stack forcing refresh traffic between windows."""
        program = LogicalProgram().alloc(0, 1, 2, 3)
        for _ in range(3):
            program.cnot(0, 1)
            program.cnot(2, 3)
        machine = _machine(embedding=embedding, modes=10)
        schedule = compile_program(program, machine, policy="surgery_only")
        partition = partition_surgery(schedule)
        assert len(partition.pairs) == 2
        for (qa, qb), spans in partition.pairs:
            assert len(spans) == 3
            spec = JointLoweringSpec(distance=3, embedding=embedding)
            memory = lower_joint_timelines(
                schedule.qubit_timeline(qa),
                schedule.qubit_timeline(qb),
                spans,
                _model(),
                spec,
            )
            certify_joint_deterministic(memory)
            assert memory.windows == 3

    def test_paper_clock_certifies_and_scales_rounds(self):
        ta, tb, spans, _ = _surgery_pair(
            LogicalProgram.bell_pairs(2), _machine(embedding="natural")
        )
        one = lower_joint_timelines(
            ta, tb, spans, _model(),
            JointLoweringSpec(distance=3, embedding="natural"),
        )
        paper = lower_joint_timelines(
            ta, tb, spans, _model(),
            JointLoweringSpec(distance=3, embedding="natural", rounds_per_timestep=3),
        )
        certify_joint_deterministic(paper)
        assert paper.window_rounds == 3 * one.window_rounds
        assert paper.rounds == 3 * one.rounds

    def test_measured_partner_certifies(self):
        """t_teleport measures the ancilla away mid-program; the joint
        circuit must still stitch its early readout correctly."""
        ta, tb, spans, _ = _surgery_pair(
            LogicalProgram.t_teleport(2), _machine(embedding="compact")
        )
        spec = JointLoweringSpec(distance=3, embedding="compact")
        memory = lower_joint_timelines(ta, tb, spans, _model(), spec)
        certify_joint_deterministic(memory)

    def test_joint_graph_has_no_undetectable_faults(self):
        for embedding in ("natural", "compact"):
            ta, tb, spans, _ = _surgery_pair(
                LogicalProgram.bell_pairs(2), _machine(embedding=embedding)
            )
            memory = lower_joint_timelines(
                ta, tb, spans, _model(),
                JointLoweringSpec(distance=3, embedding=embedding),
            )
            setup = prepare_decoding(memory, "unionfind")
            assert setup.graph.undetectable_probability == 0.0
            assert setup.basis_observables == [0, 1]

    def test_joint_shapes_dedupe_symmetric_pairs(self):
        machine = _machine(grid=(2, 2))
        schedule = compile_program(
            LogicalProgram.bell_pairs(4), machine, policy="surgery_only"
        )
        partition = partition_surgery(schedule)
        spec = JointLoweringSpec(distance=3, embedding="compact")
        shapes = [
            joint_shape(
                schedule.qubit_timeline(qa), schedule.qubit_timeline(qb), spans, spec
            )
            for (qa, qb), spans in partition.pairs
        ]
        assert shapes[0] == shapes[1]

    def test_requires_window_and_memory_hardware(self):
        ta, tb, spans, _ = _surgery_pair(LogicalProgram.bell_pairs(2), _machine())
        spec = JointLoweringSpec(distance=3, embedding="compact")
        with pytest.raises(ValueError, match="at least one surgery window"):
            lower_joint_timelines(ta, tb, (), _model(), spec)
        from repro.noise import BASELINE_HARDWARE

        bare = ErrorModel(hardware=BASELINE_HARDWARE, p=1e-3)
        with pytest.raises(ValueError, match="memory hardware"):
            lower_joint_timelines(ta, tb, spans, bare, spec)

    def test_spec_validation(self):
        with pytest.raises(ValueError):
            JointLoweringSpec(distance=3, embedding="diagonal")
        with pytest.raises(ValueError):
            JointLoweringSpec(distance=3, embedding="compact", basis="Y")
        with pytest.raises(ValueError):
            JointLoweringSpec(distance=3, embedding="compact", rounds_per_timestep=0)
        with pytest.raises(ValueError):
            JointLoweringSpec(distance=3, embedding="compact", window_noise_scale=1.5)


@lru_cache(maxsize=None)
def _factorized_setup(embedding):
    """Joint circuit with surgery-window noise zeroed, plus its decoder."""
    machine = _machine(embedding=embedding)
    schedule = compile_program(
        LogicalProgram.bell_pairs(2), machine, policy="surgery_only"
    )
    (qa, qb), spans = partition_surgery(schedule).pairs[0]
    spec = JointLoweringSpec(distance=3, embedding=embedding, window_noise_scale=0.0)
    memory = lower_joint_timelines(
        schedule.qubit_timeline(qa),
        schedule.qubit_timeline(qb),
        spans,
        _model(),
        spec,
    )
    setup = prepare_decoding(memory, "unionfind")
    sampler = make_sampler(memory.circuit, "packed")
    return memory, setup, sampler


class TestZeroWindowNoiseFactorization:
    @pytest.mark.parametrize("embedding", ["natural", "compact"])
    def test_dem_has_no_cross_patch_mechanisms(self, embedding):
        memory, setup, _ = _factorized_setup(embedding)
        side_of = [memory.detector_sides[i] for i in setup.basis_detectors]
        for fault in setup.dem.projected(memory.basis):
            sides = {side_of[i] for i in fault.detectors}
            assert "seam" not in sides, fault
            assert len(sides) <= 1, fault

    @pytest.mark.parametrize("embedding", ["natural", "compact"])
    @settings(max_examples=10, deadline=None)
    @given(seed=st.integers(min_value=0, max_value=2**20))
    def test_joint_decode_matches_independent_decode(self, embedding, seed):
        """With the window noiseless the joint graph splits into the two
        patches' components, so decoding the full joint syndrome must
        predict each patch's observable exactly as decoding that patch's
        syndrome alone — shot for shot."""
        memory, setup, sampler = _factorized_setup(embedding)
        data = sampler.sample(256, np.random.SeedSequence(seed))
        dets = data.detectors[:, setup.basis_detectors]
        side_of = np.array(
            [memory.detector_sides[i] for i in setup.basis_detectors]
        )
        joint = setup.decoder.decode_batch(dets)
        for bit, side in enumerate(memory.observable_sides):
            alone = dets.copy()
            alone[:, side_of != side] = False
            masked = setup.decoder.decode_batch(alone)
            assert np.array_equal((joint >> bit) & 1, (masked >> bit) & 1)


class TestCorrelatedCampaign:
    SHOTS = 1100  # one full engine block plus a remainder

    @pytest.mark.parametrize("backend", ["packed", "reference"])
    def test_workers_do_not_change_counts(self, backend):
        program = LogicalProgram.bell_pairs(4)
        machine = _machine(embedding="natural", grid=(2, 2))
        kwargs = dict(
            shots=self.SHOTS,
            seed=11,
            policy="surgery_only",
            correlated=True,
            chunk_size=512,
            backend=backend,
        )
        reference = run_program_experiment(program, machine, **kwargs)
        sharded = run_program_experiment(program, machine, workers=4, **kwargs)
        for a, b in zip(reference.per_qubit, sharded.per_qubit):
            assert a.result == b.result, a.qubit
        for a, b in zip(reference.pieces, sharded.pieces):
            assert a.qubits == b.qubits
            assert a.result.logical_errors == b.result.logical_errors, a.qubits
        assert (
            reference.joint_program_error_rate == sharded.joint_program_error_rate
        )

    def test_independent_estimates_unchanged_by_correlated_mode(self):
        program = LogicalProgram.bell_pairs(4)
        machine = _machine(grid=(2, 2))
        plain = run_program_experiment(
            program, machine, shots=512, seed=3, policy="surgery_only"
        )
        correlated = run_program_experiment(
            program, machine, shots=512, seed=3, policy="surgery_only",
            correlated=True,
        )
        assert plain.pieces is None and correlated.pieces is not None
        for a, b in zip(plain.per_qubit, correlated.per_qubit):
            assert a.result == b.result
        assert plain.program_error_rate == correlated.program_error_rate

    def test_pieces_partition_and_joint_product(self):
        result = run_program_experiment(
            LogicalProgram.bell_pairs(4),
            _machine(grid=(2, 2)),
            shots=512,
            seed=0,
            policy="surgery_only",
            correlated=True,
        )
        assert sorted(q for piece in result.pieces for q in piece.qubits) == [0, 1, 2, 3]
        assert all(len(piece.qubits) == 2 for piece in result.pieces)
        assert result.uncovered_windows == 0
        survival = 1.0
        for piece in result.pieces:
            survival *= 1.0 - piece.logical_error_rate
        assert result.joint_program_error_rate == pytest.approx(1.0 - survival)
        lo, hi = result.joint_confidence_interval
        assert lo <= result.joint_program_error_rate <= hi

    def test_oversized_surgery_component_falls_back_to_independent(self):
        result = run_program_experiment(
            LogicalProgram.ghz(3),
            _machine(grid=(2, 2)),
            shots=256,
            seed=0,
            policy="surgery_only",
            correlated=True,
        )
        assert all(len(piece.qubits) == 1 for piece in result.pieces)
        assert result.uncovered_windows == 2
        assert result.joint_program_error_rate == pytest.approx(
            result.program_error_rate
        )

    def test_no_surgery_means_all_single_pieces(self):
        # auto policy co-locates the pairs: every CNOT is transversal
        result = run_program_experiment(
            LogicalProgram.bell_pairs(2),
            _machine(grid=(1, 1)),
            shots=128,
            seed=0,
            policy="auto",
            correlated=True,
        )
        assert all(len(piece.qubits) == 1 for piece in result.pieces)
        assert result.uncovered_windows == 0

    def test_decode_stats_include_joint_pieces_and_balance(self):
        result = run_program_experiment(
            LogicalProgram.bell_pairs(4),
            _machine(grid=(2, 2)),
            shots=512,
            seed=0,
            policy="surgery_only",
            correlated=True,
        )
        stats = result.decode_stats
        assert sum(stats[t] for t in TIER_NAMES) == stats["unique"]
        # 4 independent runs + 2 joint pieces
        assert stats["shots"] == 512 * 6

    def test_compare_architectures_shares_joint_caches(self):
        comparison = compare_architectures(
            LogicalProgram.bell_pairs(4),
            distances=(3,),
            shots=256,
            policy="surgery_only",
            correlated=True,
            program_name="pairs",
        )
        assert comparison.joint_cache.hits > 0
        assert comparison.joint_graph_cache.hits > 0
        rows = comparison.correlated_table_rows()
        assert len(rows) == 4
        headers = comparison.CORRELATED_TABLE_HEADERS
        assert len(rows[0]) == len(headers)

    def test_uncorrelated_sweep_has_no_joint_caches(self):
        comparison = compare_architectures(
            LogicalProgram.bell_pairs(2),
            distances=(3,),
            embeddings=("natural",),
            refresh_policies=("dram",),
            shots=64,
            program_name="pairs",
        )
        assert comparison.joint_cache is None
        with pytest.raises(ValueError, match="correlated"):
            comparison.correlated_table_rows()
        with pytest.raises(ValueError, match="correlated"):
            comparison.rows[0].joint_program_error_rate


class TestTTeleport:
    def test_structure(self):
        program = LogicalProgram.t_teleport(4)
        assert program.num_qubits == 4
        names = [op.name for op in program.ops]
        assert names.count("T") == 4  # two consumptions per data qubit
        assert names.count("CNOT") == 2
        assert names.count("MEASURE_Z") == 2
        with pytest.raises(ValueError):
            LogicalProgram.t_teleport(3)

    def test_registered_and_compiles(self):
        program = build_program("t", 2)
        schedule = compile_program(program, _machine(), policy="surgery_only")
        assert schedule.cnot_surgery == 1


class TestProgramThreshold:
    def test_pinned_crossing_smoke(self):
        """~50-line driver over compare_architectures (ROADMAP item):
        the p_program curves of d=3 and d=5 must cross inside the sweep
        at the canned seed (counts are bit-deterministic, so the band is
        a pinned regression, not a statistical hope)."""
        study = estimate_program_threshold(
            LogicalProgram.bell_pairs(2),
            physical_error_rates=(2e-3, 1.3e-2),
            distances=(3, 5),
            shots=256,
            seed=0,
            program_name="pairs",
        )
        assert set(study.rates) == {3, 5}
        assert all(len(rates) == 2 for rates in study.rates.values())
        # below threshold the larger distance wins, above it loses
        assert study.rates[5][0] < study.rates[3][0]
        assert study.rates[5][1] > study.rates[3][1]
        threshold = study.threshold_estimate()
        assert threshold is not None
        assert 2e-3 < threshold < 1.3e-2
        assert len(study.rows()) == 2

    def test_unbracketed_returns_none(self):
        study = estimate_program_threshold(
            LogicalProgram.bell_pairs(2),
            physical_error_rates=(1.3e-2,),
            distances=(3, 5),
            shots=64,
            seed=0,
        )
        assert study.threshold_estimate() is None
