"""Batched lockstep union-find kernel: bit-identity and growth pinning.

The kernel's whole contract is that it is indistinguishable from calling
the flat ``UnionFindDecoder`` per shot — same support, same canonical
peel, same predictions, same failures.  These tests pin that from four
directions: hypothesis-driven element-wise equality on both embeddings,
round-by-round growth traces against the independent unit-step
reference (including the shared-edge double-growth scenario on the hand
graphs), exact corrections-equality on sampled d=3/5/7 syndromes at
threshold, and the durable executor's graceful degradation when the
batched tier raises mid-block.
"""

import numpy as np
import pytest
from hypothesis import HealthCheck, example, given, settings, strategies as st

from test_decoders import line_graph, reference_unit_step_growth

from repro.arch import compact_memory_circuit
from repro.decoders import BatchedUnionFind, MatchingGraph, UnionFindDecoder
from repro.decoders.batched_uf import DEFAULT_LOCKSTEP
from repro.dem import DetectorErrorModel
from repro.noise import BASELINE_HARDWARE, MEMORY_HARDWARE, ErrorModel
from repro.sim.engine import block_seeds, make_sampler, run_block
from repro.sim.experiment import prepare_decoding
from repro.surface_code import baseline_memory_circuit


def _setup(circuit_factory, d=3, p=3e-3, hardware=BASELINE_HARDWARE):
    memory = circuit_factory(d, ErrorModel(hardware=hardware, p=p))
    dem = DetectorErrorModel(memory.circuit)
    graph = MatchingGraph.from_dem(dem, memory.basis)
    flat = UnionFindDecoder(graph)
    return memory, dem, flat


@pytest.fixture(scope="module")
def baseline_setup():
    return _setup(baseline_memory_circuit)


@pytest.fixture(scope="module")
def compact_setup():
    return _setup(compact_memory_circuit, hardware=MEMORY_HARDWARE)


def _batch_from_events(event_sets, num_detectors):
    dets = np.zeros((len(event_sets), num_detectors), dtype=bool)
    for row, events in enumerate(event_sets):
        for e in events:
            dets[row, e] = True
    return dets


def _flat_loop(flat, dets):
    out = np.zeros(dets.shape[0], dtype=np.int64)
    for i, row in enumerate(dets):
        events = np.flatnonzero(row).tolist()
        out[i] = flat.decode(events) if events else 0
    return out


# Mixed batches: zero, weight-1, weight-2 and heavy rows side by side.
_batches = st.lists(
    st.sets(st.integers(0, 11), min_size=0, max_size=7),
    min_size=1,
    max_size=14,
)


class TestBatchedEqualsFlat:
    """Element-wise ``kernel.decode_batch == per-shot flat decode``."""

    @settings(
        max_examples=60,
        deadline=None,
        suppress_health_check=[HealthCheck.function_scoped_fixture],
    )
    @given(event_sets=_batches)
    @example(event_sets=[set()])  # all-trivial batch
    @example(event_sets=[set(), {3}, {7}, {11}])  # weight-1 rows
    @example(event_sets=[{0, 1}, {2, 9}, {4, 5}])  # weight-2 rows
    @example(event_sets=[set(), {5}, {1, 2}, {0, 3, 6, 9}])  # all tiers mixed
    def test_baseline_embedding(self, baseline_setup, event_sets):
        _, _, flat = baseline_setup
        kernel = BatchedUnionFind(flat)
        dets = _batch_from_events(event_sets, flat.graph.num_detectors)
        np.testing.assert_array_equal(
            kernel.decode_batch(dets), _flat_loop(flat, dets)
        )

    @settings(
        max_examples=60,
        deadline=None,
        suppress_health_check=[HealthCheck.function_scoped_fixture],
    )
    @given(event_sets=_batches)
    @example(event_sets=[set(), {5}, {1, 2}, {0, 3, 6, 9}])
    def test_compact_embedding(self, compact_setup, event_sets):
        _, _, flat = compact_setup
        kernel = BatchedUnionFind(flat)
        n = flat.graph.num_detectors
        dets = _batch_from_events(
            [{e % n for e in events} for events in event_sets], n
        )
        np.testing.assert_array_equal(
            kernel.decode_batch(dets), _flat_loop(flat, dets)
        )

    @pytest.mark.parametrize("d,p,shots", [(3, 5e-3, 512), (5, 5e-3, 256), (7, 5e-3, 128)])
    def test_sampled_syndromes_at_threshold(self, d, p, shots):
        memory, dem, flat = _setup(baseline_memory_circuit, d=d, p=p)
        sampler = make_sampler(memory.circuit, "packed")
        dets = sampler.sample(shots, np.random.SeedSequence(7)).detectors[
            :, dem.basis_detectors(memory.basis)
        ]
        kernel = BatchedUnionFind(flat)
        np.testing.assert_array_equal(
            kernel.decode_batch(np.ascontiguousarray(dets, dtype=bool)),
            _flat_loop(flat, dets),
        )

    def test_lockstep_slicing_never_changes_results(self, baseline_setup):
        _, _, flat = baseline_setup
        rng = np.random.default_rng(5)
        dets = rng.random((40, flat.graph.num_detectors)) < 0.2
        reference = BatchedUnionFind(flat, lockstep=DEFAULT_LOCKSTEP).decode_batch(dets)
        for lockstep in (1, 3, 7, 40):
            np.testing.assert_array_equal(
                BatchedUnionFind(flat, lockstep=lockstep).decode_batch(dets),
                reference,
            )

    def test_shares_the_flat_decoder_arrays(self, baseline_setup):
        # Bit-identity starts with byte-identity of the graph lowering:
        # the kernel must decode over the *same* arrays, not copies.
        _, _, flat = baseline_setup
        kernel = BatchedUnionFind(flat)
        assert kernel.edge_u is flat.edge_u
        assert kernel.edge_v is flat.edge_v
        assert kernel.lengths is flat.lengths

    def test_undecodable_shot_raises_like_flat(self):
        # An isolated detector can never reach the boundary: the flat
        # decoder raises, so the kernel must too (same message contract).
        graph = MatchingGraph(2, "Z")
        graph.add_edge(0, graph.boundary, 0.01, 1)
        flat = UnionFindDecoder(graph)
        kernel = BatchedUnionFind(flat)
        dets = np.array([[True, False], [False, True]])
        with pytest.raises(RuntimeError, match="failed to terminate"):
            kernel.decode_batch(dets)

    def test_rejects_bad_shapes_and_lockstep(self, baseline_setup):
        _, _, flat = baseline_setup
        kernel = BatchedUnionFind(flat)
        with pytest.raises(ValueError):
            kernel.decode_batch(np.zeros(flat.graph.num_detectors, dtype=bool))
        with pytest.raises(ValueError):
            kernel.decode_batch(np.zeros((4, flat.graph.num_detectors + 1), dtype=bool))
        with pytest.raises(ValueError):
            BatchedUnionFind(flat, lockstep=0)


class TestGrowthTracePinning:
    """The kernel's traced growth is the flat decoder's, round by round."""

    def _hand_cases(self):
        tri = MatchingGraph(3, "Z")
        tri.add_edge(0, 1, 0.01, 0)
        tri.add_edge(1, 2, 0.01, 0)
        tri.add_edge(0, 2, 0.01, 0)
        tri.add_edge(2, tri.boundary, 0.01, 1)
        line = line_graph()
        return [
            (line, [0, 2]),
            (line, [1]),
            (tri, [0, 1]),
            (tri, [0, 1, 2]),
        ]

    def test_traces_match_unit_step_reference(self):
        for graph, events in self._hand_cases():
            flat = UnionFindDecoder(graph)
            kernel = BatchedUnionFind(flat)
            dets = _batch_from_events([set(events)], graph.num_detectors)
            traces = [[] for _ in range(1)]
            support = kernel.grow_batch(dets, traces=traces)
            ref_trace, ref_support = reference_unit_step_growth(
                graph, flat._len, events
            )
            ref_by_round = dict(ref_trace)
            assert traces[0], events
            for round_no, snapshot in traces[0]:
                assert snapshot == ref_by_round[round_no], (events, round_no)
            assert np.flatnonzero(support[0]).tolist() == ref_support, events

    def test_traces_match_flat_decoder_traces(self):
        for graph, events in self._hand_cases():
            flat = UnionFindDecoder(graph)
            kernel = BatchedUnionFind(flat)
            flat_trace: list = []
            flat._grow(events, trace=flat_trace)
            dets = _batch_from_events([set(events)], graph.num_detectors)
            traces = [[]]
            kernel.grow_batch(dets, traces=traces)
            assert traces[0] == flat_trace, events

    def test_shared_edge_grows_once_per_cluster_per_round(self):
        # Two clusters sharing edge (0,1): it must grow one unit per
        # *side* per round (2 total), its single-sided neighbors one.
        graph = self._hand_cases()[2][0]
        flat = UnionFindDecoder(graph, resolution=1)
        kernel = BatchedUnionFind(flat)
        dets = _batch_from_events([{0, 1}], graph.num_detectors)
        traces = [[]]
        kernel.grow_batch(dets, traces=traces)
        round_one = traces[0][0][1]
        shared = graph._edge_index[(0, 1)]
        assert round_one[shared] == 2
        assert round_one[graph._edge_index[(0, 2)]] == 1
        assert round_one[graph._edge_index[(1, 2)]] == 1

    def test_fast_path_support_equals_exact_path_support(self, baseline_setup):
        # The default (internal-edges-rated) path must return the same
        # support set as the exact traced loop on random batches.
        _, _, flat = baseline_setup
        kernel = BatchedUnionFind(flat)
        rng = np.random.default_rng(11)
        dets = rng.random((32, flat.graph.num_detectors)) < 0.25
        fast = kernel.grow_batch(dets)
        traced = kernel.grow_batch(dets, traces=[[] for _ in range(32)])
        np.testing.assert_array_equal(fast, traced)


class TestDurableDegradation:
    """A batched-tier failure must degrade to ``decode_block_full``."""

    def test_batched_tier_raise_falls_back_to_full_block_decode(self):
        memory = baseline_memory_circuit(
            3, ErrorModel(hardware=BASELINE_HARDWARE, p=5e-3)
        )
        setup = prepare_decoding(memory)
        sampler = make_sampler(memory.circuit, "packed")
        index, shots, seed = block_seeds(512, 11)[0]

        errors, stats = run_block(
            sampler, setup.decoder, setup.basis_detectors,
            setup.basis_observables, index, shots, seed,
        )
        assert stats.get("batched", 0) > 0
        assert "fallback" not in stats

        broken = prepare_decoding(memory).decoder

        def boom(dets):
            raise RuntimeError("batched kernel corrupted")

        broken._decode_heavy_batch = boom
        errors_fb, stats_fb = run_block(
            sampler, broken, setup.basis_detectors,
            setup.basis_observables, index, shots, seed,
        )
        # Same counts (the tiers are provably equivalent), flagged as
        # degraded, and everything heavy lands in ``full``.
        assert errors_fb == errors
        assert stats_fb["fallback"] == 1
        assert stats_fb["batched"] == 0
        assert stats_fb["full"] > 0
        assert stats_fb["unique"] == stats["unique"]
