"""Tests for the ``python -m repro`` command-line interface."""

import pytest

from repro.__main__ import main


class TestCLI:
    def test_tables(self, capsys):
        assert main(["tables"]) == 0
        out = capsys.readouterr().out
        assert "Table I" in out and "1499" in out and "279" in out

    def test_magic(self, capsys):
        assert main(["magic"]) == 0
        out = capsys.readouterr().out
        assert "1.22x" in out and "1.82x" in out

    def test_inventory(self, capsys):
        assert main(["inventory", "--grid", "1", "--distance", "3", "--modes", "10"]) == 0
        out = capsys.readouterr().out
        assert "transmons        : 11" in out
        assert "cavities         : 9" in out

    def test_threshold_quick(self, capsys):
        assert main(["threshold", "--scheme", "baseline", "--shots", "60"]) == 0
        out = capsys.readouterr().out
        assert "baseline" in out and "threshold estimate" in out

    def test_threshold_engine_flags(self, capsys):
        assert main([
            "threshold", "--scheme", "baseline", "--shots", "60",
            "--workers", "2", "--chunk-size", "1024",
        ]) == 0
        out = capsys.readouterr().out
        assert "threshold estimate" in out

    def test_threshold_reference_backend(self, capsys):
        assert main([
            "threshold", "--scheme", "baseline", "--shots", "60",
            "--backend", "reference",
        ]) == 0
        out = capsys.readouterr().out
        assert "threshold estimate" in out

    def test_threshold_rejects_unknown_backend(self):
        with pytest.raises(SystemExit):
            main(["threshold", "--backend", "simd"])

    def test_requires_command(self):
        with pytest.raises(SystemExit):
            main([])
