"""Tests for the ``python -m repro`` command-line interface."""

import pytest

from repro.__main__ import main


class TestCLI:
    def test_tables(self, capsys):
        assert main(["tables"]) == 0
        out = capsys.readouterr().out
        assert "Table I" in out and "1499" in out and "279" in out

    def test_magic(self, capsys):
        assert main(["magic"]) == 0
        out = capsys.readouterr().out
        assert "1.22x" in out and "1.82x" in out

    def test_inventory(self, capsys):
        assert main(["inventory", "--grid", "1", "--distance", "3", "--modes", "10"]) == 0
        out = capsys.readouterr().out
        assert "transmons        : 11" in out
        assert "cavities         : 9" in out

    def test_threshold_quick(self, capsys):
        assert main(["threshold", "--scheme", "baseline", "--shots", "60"]) == 0
        out = capsys.readouterr().out
        assert "baseline" in out and "threshold estimate" in out

    def test_threshold_engine_flags(self, capsys):
        assert main([
            "threshold", "--scheme", "baseline", "--shots", "60",
            "--workers", "2", "--chunk-size", "1024",
        ]) == 0
        out = capsys.readouterr().out
        assert "threshold estimate" in out

    def test_threshold_reference_backend(self, capsys):
        assert main([
            "threshold", "--scheme", "baseline", "--shots", "60",
            "--backend", "reference",
        ]) == 0
        out = capsys.readouterr().out
        assert "threshold estimate" in out

    def test_threshold_rejects_unknown_backend(self):
        with pytest.raises(SystemExit):
            main(["threshold", "--backend", "simd"])

    def test_memory_prints_interval_and_tiers(self, capsys):
        assert main([
            "memory", "--scheme", "compact_interleaved", "--distance", "3",
            "--shots", "200",
        ]) == 0
        out = capsys.readouterr().out
        assert "p_L" in out and "[" in out  # Wilson interval brackets
        assert "decode tiers:" in out and "trivial=" in out
        assert "tier accounting balances" in out

    def test_memory_reference_backend(self, capsys):
        assert main([
            "memory", "--scheme", "baseline", "--shots", "100",
            "--backend", "reference",
        ]) == 0
        assert "p_L" in capsys.readouterr().out

    def test_compare_prints_program_estimates_and_caches(self, capsys):
        assert main([
            "compare", "--distance", "3", "--shots", "128", "--qubits", "2",
        ]) == 0
        out = capsys.readouterr().out
        assert "compact" in out and "natural" in out
        assert "p_program" in out and "wilson 95%" in out
        assert "lowering cache:" in out and "decoder-graph cache:" in out
        assert "tier accounting balances" in out

    def test_compare_single_embedding_and_policy(self, capsys):
        assert main([
            "compare", "--shots", "64", "--qubits", "2",
            "--embedding", "natural", "--refresh", "dram",
        ]) == 0
        out = capsys.readouterr().out
        assert "natural" in out and "compact" not in out

    def test_compare_correlated_reports_joint_estimates(self, capsys):
        assert main([
            "compare", "--correlated", "--distance", "3", "--shots", "128",
            "--qubits", "2", "--embedding", "natural", "--refresh", "dram",
        ]) == 0
        out = capsys.readouterr().out
        assert "policy=surgery_only" in out  # --correlated defaults the policy
        assert "Independent vs joint" in out
        assert "joint q0,q1" in out
        assert "joint-lowering cache:" in out
        assert "proven deterministic by symbolic GF(2) propagation" in out
        assert "tier accounting balances" in out

    def test_compare_correlated_respects_explicit_policy(self, capsys):
        assert main([
            "compare", "--correlated", "--policy", "auto", "--shots", "64",
            "--qubits", "2", "--embedding", "natural", "--refresh", "dram",
        ]) == 0
        out = capsys.readouterr().out
        # co-located pair compiles transversally: no joint pieces exist
        assert "policy=auto" in out
        assert "joint q0,q1" not in out

    def test_compare_t_teleport_program(self, capsys):
        assert main([
            "compare", "--program", "t", "--qubits", "2", "--shots", "64",
            "--embedding", "natural", "--refresh", "dram",
        ]) == 0
        out = capsys.readouterr().out
        assert "t(2)" in out

    def test_threshold_program_mode(self, capsys):
        assert main([
            "threshold", "--program", "pairs", "--qubits", "2",
            "--shots", "40", "--embedding", "natural",
        ]) == 0
        out = capsys.readouterr().out
        assert "program: pairs(2) natural/dram" in out
        assert "program threshold estimate" in out

    def test_requires_command(self):
        with pytest.raises(SystemExit):
            main([])


class TestLintCommand:
    def test_lint_green_on_preset_matrix(self, capsys):
        assert main([
            "lint", "--programs", "pairs", "--embedding", "compact",
        ]) == 0
        out = capsys.readouterr().out
        assert "0 error(s)" in out and "schedules=" in out

    def test_lint_json_output_and_report_file(self, capsys, tmp_path):
        report_path = tmp_path / "lint.json"
        assert main([
            "lint", "--programs", "pairs", "--embedding", "compact",
            "--json", "--out", str(report_path),
        ]) == 0
        import json

        printed = json.loads(capsys.readouterr().out)
        assert printed["ok"] and printed["errors"] == 0
        on_disk = json.loads(report_path.read_text())
        assert on_disk == printed
        assert on_disk["checked"]["schedules"] > 0

    def test_lint_oracle_cross_check(self, capsys):
        assert main([
            "lint", "--programs", "pairs", "--embedding", "compact",
            "--oracle-cert",
        ]) == 0
        assert "0 error(s)" in capsys.readouterr().out

    def test_lint_exit_code_on_findings(self, capsys, monkeypatch):
        # Make the driver report an error and assert the CLI gates on it.
        from repro.analyze import Diagnostic, LintReport
        import repro.analyze

        def broken_matrix(**_kwargs):
            report = LintReport()
            report.extend([
                Diagnostic("SCH003", "error", "fake", "injected failure")
            ])
            return report

        monkeypatch.setattr(repro.analyze, "lint_matrix", broken_matrix)
        assert main(["lint", "--programs", "pairs"]) == 1
        out = capsys.readouterr().out
        assert "SCH003" in out and "1 error(s)" in out
