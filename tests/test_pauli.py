"""Unit and property tests for the Pauli algebra."""

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.pauli import PauliString, identity, pauli_x, pauli_y, pauli_z


def random_pauli(draw, n):
    letters = draw(st.text(alphabet="IXYZ", min_size=n, max_size=n))
    sign = draw(st.sampled_from([1, -1, 1j, -1j]))
    return PauliString.from_string(letters, sign)


paulis = st.integers(min_value=1, max_value=6).flatmap(
    lambda n: st.builds(
        PauliString.from_string,
        st.text(alphabet="IXYZ", min_size=n, max_size=n),
        st.sampled_from([1, -1, 1j, -1j]),
    )
)


def pauli_pairs(n_max=6):
    return st.integers(min_value=1, max_value=n_max).flatmap(
        lambda n: st.tuples(
            st.builds(
                PauliString.from_string,
                st.text(alphabet="IXYZ", min_size=n, max_size=n),
                st.sampled_from([1, -1, 1j, -1j]),
            ),
            st.builds(
                PauliString.from_string,
                st.text(alphabet="IXYZ", min_size=n, max_size=n),
                st.sampled_from([1, -1, 1j, -1j]),
            ),
        )
    )


def pauli_triples(n_max=5):
    def one(n):
        return st.builds(
            PauliString.from_string,
            st.text(alphabet="IXYZ", min_size=n, max_size=n),
            st.sampled_from([1, -1, 1j, -1j]),
        )

    return st.integers(min_value=1, max_value=n_max).flatmap(
        lambda n: st.tuples(one(n), one(n), one(n))
    )


class TestConstruction:
    def test_from_string_roundtrip(self):
        p = PauliString.from_string("XIZY")
        assert p.letters() == "XIZY"
        assert str(p) == "+XIZY"

    def test_sign_prefixes(self):
        assert str(PauliString.from_string("X", -1)) == "-X"
        assert str(PauliString.from_string("Y", 1j)) == "+iY"

    def test_identity(self):
        p = identity(3)
        assert p.is_identity()
        assert p.weight == 0

    def test_single_qubit_builders(self):
        assert pauli_x(3, 1).letters() == "IXI"
        assert pauli_y(3, 0).letters() == "YII"
        assert pauli_z(3, 2).letters() == "IIZ"

    def test_from_qubit_letters(self):
        p = PauliString.from_qubit_letters(4, [(0, "X"), (3, "Z")])
        assert p.letters() == "XIIZ"

    def test_invalid_letter_rejected(self):
        with pytest.raises(ValueError):
            PauliString.from_string("XQ")

    def test_mismatched_lengths_rejected(self):
        with pytest.raises(ValueError):
            PauliString([True], [True, False])


class TestAlgebra:
    def test_xz_is_minus_i_y(self):
        x = PauliString.from_string("X")
        z = PauliString.from_string("Z")
        xz = x * z
        # XZ = -iY, so in letter form the Y should carry a -i prefix.
        assert xz.letters() == "Y"
        assert str(xz) == "-iY"

    def test_zx_is_plus_i_y(self):
        z = PauliString.from_string("Z")
        x = PauliString.from_string("X")
        assert str(z * x) == "+iY"

    def test_xx_is_identity(self):
        x = PauliString.from_string("XX")
        assert (x * x).is_identity()
        assert (x * x).phase == 0

    def test_y_squared_is_identity(self):
        y = PauliString.from_string("Y")
        assert str(y * y) == "+I"

    def test_anticommuting_pair(self):
        assert not pauli_x(1, 0).commutes_with(pauli_z(1, 0))
        assert not pauli_x(1, 0).commutes_with(pauli_y(1, 0))

    def test_commuting_products(self):
        xx = PauliString.from_string("XX")
        zz = PauliString.from_string("ZZ")
        assert xx.commutes_with(zz)

    def test_tensor(self):
        p = PauliString.from_string("X").tensor(PauliString.from_string("Z"))
        assert p.letters() == "XZ"

    def test_neg(self):
        assert str(-PauliString.from_string("X")) == "-X"

    @given(pauli_pairs())
    def test_multiplication_matches_matrices(self, pair):
        a, b = pair
        if a.num_qubits > 4:
            return
        np.testing.assert_allclose(
            (a * b).to_matrix(), a.to_matrix() @ b.to_matrix(), atol=1e-12
        )

    @given(pauli_triples())
    def test_associativity(self, triple):
        a, b, c = triple
        assert (a * b) * c == a * (b * c)

    @given(paulis)
    def test_identity_is_neutral(self, p):
        e = identity(p.num_qubits)
        assert e * p == p
        assert p * e == p

    @given(pauli_pairs())
    def test_commutation_matches_matrices(self, pair):
        a, b = pair
        if a.num_qubits > 4:
            return
        ab = a.to_matrix() @ b.to_matrix()
        ba = b.to_matrix() @ a.to_matrix()
        if a.commutes_with(b):
            np.testing.assert_allclose(ab, ba, atol=1e-12)
        else:
            np.testing.assert_allclose(ab, -ba, atol=1e-12)

    @given(paulis)
    def test_square_is_plus_or_minus_identity(self, p):
        square = p * p
        assert square.weight == 0
        assert square.phase in (0, 2)

    @given(paulis)
    def test_hermitian_iff_real_residual_phase(self, p):
        m = p.to_matrix()
        if p.is_hermitian():
            np.testing.assert_allclose(m, m.conj().T, atol=1e-12)
        else:
            assert not np.allclose(m, m.conj().T, atol=1e-12)


class TestIntrospection:
    def test_weight(self):
        assert PauliString.from_string("XIYZ").weight == 3

    def test_support(self):
        assert PauliString.from_string("IXIZ").support() == [1, 3]

    def test_letter_access(self):
        p = PauliString.from_string("XYZI")
        assert [p.letter(i) for i in range(4)] == ["X", "Y", "Z", "I"]

    def test_matrix_of_y(self):
        np.testing.assert_allclose(
            PauliString.from_string("Y").to_matrix(),
            np.array([[0, -1j], [1j, 0]]),
        )

    def test_hash_and_eq(self):
        a = PauliString.from_string("XZ")
        b = PauliString.from_string("XZ")
        assert a == b and hash(a) == hash(b)
        assert a != PauliString.from_string("XZ", -1)
