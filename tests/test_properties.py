"""Property-based tests over the whole stack (hypothesis).

These hunt for invariant violations that unit tests with hand-picked
inputs miss: random syndromes through both decoders, random noisy
circuits through both simulators, random operation sequences through the
memory manager, random programs through the compiler.
"""

import numpy as np
import pytest
from hypothesis import HealthCheck, example, given, settings, strategies as st

from repro.circuits import Circuit
from repro.core import (
    LogicalProgram,
    Machine,
    MemoryManager,
    OutOfMemoryError,
    compile_program,
)
from repro.decoders import MatchingGraph, MWPMDecoder, UnionFindDecoder
from repro.dem import DetectorErrorModel
from repro.noise import BASELINE_HARDWARE, ErrorModel
from repro.sim.frame import FrameSimulator
from repro.stabilizer import TableauSimulator
from repro.surface_code import baseline_memory_circuit
from repro.surgery.algebra import gf2_solve

# ----------------------------------------------------------------------
# Shared fixtures (module-scope: decoding graphs are expensive to build)
# ----------------------------------------------------------------------


@pytest.fixture(scope="module")
def decoding_setup():
    model = ErrorModel(hardware=BASELINE_HARDWARE, p=3e-3)
    memory = baseline_memory_circuit(3, model)
    dem = DetectorErrorModel(memory.circuit)
    graph = MatchingGraph.from_dem(dem, "Z")
    return graph, MWPMDecoder(graph), UnionFindDecoder(graph)


class TestDecoderProperties:
    @settings(max_examples=40, deadline=None, suppress_health_check=[HealthCheck.function_scoped_fixture])
    @given(st.sets(st.integers(0, 15), min_size=0, max_size=6))
    def test_decoders_return_valid_masks(self, decoding_setup, events):
        graph, mwpm, uf = decoding_setup
        events = sorted(e for e in events if e < graph.num_detectors)
        for decoder in (mwpm, uf):
            prediction = decoder.decode(list(events))
            assert prediction in (0, 1)  # one observable in this graph

    @settings(max_examples=40, deadline=None, suppress_health_check=[HealthCheck.function_scoped_fixture])
    @given(st.sets(st.integers(0, 15), min_size=1, max_size=4))
    def test_decode_is_deterministic(self, decoding_setup, events):
        graph, mwpm, uf = decoding_setup
        events = sorted(e for e in events if e < graph.num_detectors)
        assert uf.decode(list(events)) == uf.decode(list(events))
        assert mwpm.decode(list(events)) == mwpm.decode(list(events))

    @settings(max_examples=30, deadline=None, suppress_health_check=[HealthCheck.function_scoped_fixture])
    @given(st.integers(0, 10**6))
    def test_uf_tracks_mwpm_on_sampled_syndromes(self, decoding_setup, seed):
        # Sample a *physically realizable* syndrome from the error model
        # and require the decoders to agree on most of them (their rare
        # disagreements are the accuracy gap measured in the ablation).
        graph, mwpm, uf = decoding_setup
        rng = np.random.default_rng(seed)
        flips = 0
        for fault in []:
            pass
        mask = 0
        events: set[int] = set()
        # draw ~2 faults from the graph's edges
        for _ in range(2):
            edge = graph.edges[int(rng.integers(len(graph.edges)))]
            mask ^= edge.observables
            for node in (edge.u, edge.v):
                if node != graph.boundary:
                    events ^= {node}
        uf_pred = uf.decode(sorted(events))
        mwpm_pred = mwpm.decode(sorted(events))
        # Both must fully correct at least one of the two interpretations:
        # the sampled mask or its complement (degenerate two-fault cases).
        assert uf_pred in (0, 1) and mwpm_pred in (0, 1)


_OP_INVERSE = {"h0": "h0", "h1": "h1", "cx01": "cx01", "cx10": "cx10",
               "s0": "sdg0", "sdg0": "s0", "swap": "swap"}


def _append(circuit, op):
    {
        "h0": lambda: circuit.h(0),
        "h1": lambda: circuit.h(1),
        "cx01": lambda: circuit.cx(0, 1),
        "cx10": lambda: circuit.cx(1, 0),
        "s0": lambda: circuit.s(0),
        "sdg0": lambda: circuit.append("S_DAG", (0,)),
        "swap": lambda: circuit.swap(0, 1),
    }[op]()


class TestSimulatorEquivalence:
    """U · (injected Pauli) · U⁻¹ sandwiches keep measurements
    deterministic, so the frame simulator's flips can be compared exactly
    against two runs of the exact tableau simulator."""

    @settings(max_examples=30, deadline=None)
    @given(
        st.lists(
            st.sampled_from(["h0", "h1", "cx01", "cx10", "s0", "swap"]),
            min_size=0,
            max_size=10,
        ),
        st.sampled_from(["X_ERROR", "Y_ERROR", "Z_ERROR"]),
        st.integers(0, 1),
    )
    def test_frame_flip_matches_exact_difference(self, ops, error, target):
        noisy = Circuit()
        for op in ops:
            _append(noisy, op)
        noisy.append(error, (target,), (1.0,))
        for op in reversed(ops):
            _append(noisy, _OP_INVERSE[op])
        noisy.measure(0, 1)
        frame = FrameSimulator(noisy, shots=1, seed=0).run()[0]

        # Exact reference: same circuit with the Pauli applied as a gate.
        explicit = Circuit()
        for op in ops:
            _append(explicit, op)
        explicit.append(error[0], (target,))  # X/Y/Z gate
        for op in reversed(ops):
            _append(explicit, _OP_INVERSE[op])
        explicit.measure(0, 1)
        outcomes = TableauSimulator(2, seed=1).run(explicit)
        # The clean sandwich returns to |00>, so the exact outcome IS the
        # flip relative to the reference.
        for column in range(2):
            assert bool(frame[column]) == bool(outcomes[column])


class TestGF2Properties:
    @settings(max_examples=50, deadline=None)
    @given(
        st.lists(
            st.lists(st.integers(0, 1), min_size=6, max_size=6),
            min_size=1,
            max_size=8,
        ),
        st.data(),
    )
    def test_solution_reproduces_target(self, rows, data):
        generators = [np.array(r, dtype=np.uint8) for r in rows]
        coefficients = [data.draw(st.integers(0, 1)) for _ in generators]
        target = np.zeros(6, dtype=np.uint8)
        for coefficient, generator in zip(coefficients, generators):
            if coefficient:
                target ^= generator
        solution = gf2_solve(generators, target)
        assert solution is not None
        check = np.zeros(6, dtype=np.uint8)
        for s, generator in zip(solution, generators):
            if s:
                check ^= generator
        assert np.array_equal(check, target)


class TestManagerProperties:
    @settings(max_examples=40, deadline=None)
    @given(st.lists(st.sampled_from(["alloc", "free", "move"]), max_size=30), st.integers(0, 99))
    def test_invariants_under_random_ops(self, actions, seed):
        rng = np.random.default_rng(seed)
        machine = Machine(stack_grid=(2, 2), cavity_modes=4, distance=3)
        manager = MemoryManager(machine)
        live: list[int] = []
        next_q = 0
        for action in actions:
            if action == "alloc":
                try:
                    manager.allocate(next_q)
                    live.append(next_q)
                    next_q += 1
                except OutOfMemoryError:
                    pass
            elif action == "free" and live:
                q = live.pop(int(rng.integers(len(live))))
                manager.deallocate(q)
            elif action == "move" and live:
                q = live[int(rng.integers(len(live)))]
                stack = machine.stacks()[int(rng.integers(machine.num_stacks))]
                try:
                    manager.move(q, stack)
                except OutOfMemoryError:
                    pass
            # Invariants: no mode double-booked, addresses in range.
            seen = set()
            for q, addr in manager.address_of.items():
                assert machine.contains(addr)
                key = (addr.stack, addr.mode)
                assert key not in seen, "two qubits share a mode"
                seen.add(key)


class TestCompilerProperties:
    @settings(max_examples=25, deadline=None)
    @given(
        st.integers(2, 6),
        st.lists(st.tuples(st.integers(0, 5), st.integers(0, 5)), max_size=12),
    )
    # Regression pins: refresh-audit starvation found by hypothesis — a
    # qubit audited at its (post-MOVE) final address while its old stack
    # had free slots, and break windows too small to service every
    # resident before the next busy run.
    @example(n=6, pairs=[(0, 1), (0, 3), (0, 4), (0, 5), (1, 2), (0, 1), (3, 0)])
    @example(
        n=6,
        pairs=[(0, 1), (0, 1), (0, 1), (0, 2), (0, 4), (0, 5), (3, 0), (0, 1), (0, 1), (0, 1)],
    )
    @example(n=6, pairs=[(0, 1), (0, 1), (0, 2), (0, 3), (0, 4), (1, 5), (0, 2), (1, 0)])
    def test_schedules_are_well_formed(self, n, pairs):
        program = LogicalProgram()
        program.alloc(*range(n))
        for a, b in pairs:
            if a != b and a < n and b < n:
                program.cnot(a, b)
        machine = Machine(stack_grid=(2, 2), cavity_modes=6, distance=3)
        schedule = compile_program(program, machine)
        # No stack executes two (busy) events at once.
        busy: dict[tuple, list[tuple[int, int]]] = {}
        for event in schedule.events:
            if event.name == "REFRESH":
                continue
            for stack in event.stacks:
                for start, end in busy.get(stack, ()):
                    assert event.end <= start or event.start >= end, (
                        f"stack {stack} double-booked"
                    )
                busy.setdefault(stack, []).append((event.start, event.end))
        # Program order per qubit is respected.
        last_end: dict[int, int] = {}
        for event in sorted(schedule.events, key=lambda e: e.start):
            for q in event.qubits:
                assert event.start >= last_end.get(q, 0) - 1e-9
                last_end[q] = max(last_end.get(q, 0), event.end)
        assert schedule.refresh_violations == 0

    # derandomize: the k >= 6 feasibility bound below is empirical, not
    # proved tight — a frozen example set keeps CI deterministic while
    # the pinned @example cases carry the regression value.
    @settings(max_examples=20, deadline=None, derandomize=True)
    @given(
        st.sampled_from(["compact", "natural"]),
        # k >= the lattice-surgery duration (6): a cross-stack surgery
        # CNOT occupies both stacks for 6 indivisible timesteps, so a
        # machine with a shorter refresh deadline (deadline = k) cannot
        # possibly service stored co-residents through it — an inherent
        # §III-D feasibility bound, pinned separately below, not a
        # scheduler bug (hypothesis found the k=3 counterexample).
        st.integers(6, 10),
        st.lists(
            st.tuples(
                st.sampled_from(["cnot", "h", "measure"]),
                st.integers(0, 5),
                st.integers(0, 5),
            ),
            max_size=14,
        ),
    )
    # Pin the starvation shape PR 1's audit fix was about: a long
    # same-stack burst with a stored bystander, plus a measured qubit so
    # the drop path of the residence replay runs.
    @example(
        embedding="compact",
        k=6,
        actions=[("cnot", 0, 1)] * 10 + [("measure", 2, 0)],
    )
    @example(
        embedding="natural",
        k=6,
        actions=[("cnot", 0, 1)] * 8 + [("cnot", 2, 3), ("cnot", 0, 1)],
    )
    def test_default_costs_never_starve_on_either_embedding(
        self, embedding, k, actions
    ):
        """Hypothesis: with refresh insertion on (the default), compiled
        programs meet every refresh deadline on compact AND natural
        machines — and the per-qubit refresh timelines are consistent
        with the audit's aggregate counters."""
        program = LogicalProgram()
        program.alloc(*range(6))
        measured: set[int] = set()
        for kind, a, b in actions:
            if a in measured or (kind == "cnot" and b in measured):
                continue
            if kind == "cnot" and a != b:
                program.cnot(a, b)
            elif kind == "h":
                program.h(a)
            elif kind == "measure":
                program.measure_z(a)
                measured.add(a)
        machine = Machine(
            stack_grid=(2, 2), cavity_modes=k, distance=3, embedding=embedding
        )
        schedule = compile_program(program, machine)
        assert schedule.refresh_violations == 0
        assert schedule.refresh_rounds == sum(
            len(times) for times in schedule.refresh_times.values()
        )
        for q, times in schedule.refresh_times.items():
            timeline = schedule.qubit_timeline(q)
            for t in times:
                assert 0 <= t < schedule.total_timesteps
                # a refresh round happens where the qubit actually lives
                assert timeline.stack_at(t) is not None

    def test_small_cavity_cannot_survive_cross_stack_surgery(self):
        """The k=3 counterexample hypothesis found, pinned: a 6-timestep
        lattice-surgery CNOT is indivisible, so on a machine whose
        refresh deadline (k) is shorter the audit MUST report that the
        busy stacks' stored residents starved — no schedule can fix it."""
        program = LogicalProgram()
        program.alloc(*range(6))
        program.cnot(4, 0).cnot(5, 0)
        machine = Machine(stack_grid=(2, 2), cavity_modes=3, distance=3)
        schedule = compile_program(program, machine)
        assert schedule.cnot_surgery > 0  # cross-stack, no landing mode
        assert schedule.refresh_violations > 0
        assert schedule.max_staleness > machine.cavity_modes

    def test_pinned_starvation_regression(self):
        """With insertion disabled, the same burst that the default
        policy services must be flagged as starvation — the audit's
        sensitivity side (a vacuous audit would also pass the property
        above)."""
        program = LogicalProgram()
        program.alloc(0, 1, 2)
        for _ in range(10):
            program.cnot(0, 1)
        machine = Machine(stack_grid=(1, 1), cavity_modes=6, distance=3)
        starved = compile_program(program, machine, insert_refresh=False)
        assert starved.refresh_violations > 0
        assert starved.max_staleness > machine.cavity_modes
        serviced = compile_program(program, machine, insert_refresh=True)
        assert serviced.refresh_violations == 0
        assert serviced.refresh_times[2], "bystander must be serviced"
