"""Validation of the baseline memory circuit.

The decisive test runs the *noiseless* circuit on the exact tableau
simulator: every detector must evaluate to 0 and the logical observable
must be deterministic, over many random-outcome seeds.  This catches wrong
CNOT orders (mid-round commutation violations), wrong detector wiring and
wrong observable definitions.
"""

import pytest

from repro.noise import BASELINE_HARDWARE, ErrorModel
from repro.stabilizer import TableauSimulator
from repro.surface_code import baseline_memory_circuit
from repro.surface_code.extraction import standard_round_duration


def noiseless_model():
    return ErrorModel(hardware=BASELINE_HARDWARE, p=0.0, scale_coherence=False)


def assert_detectors_deterministic(memory, seeds=range(8)):
    clean = memory.circuit.without_noise()
    observed = set()
    for seed in seeds:
        sim = TableauSimulator(clean.num_qubits, seed=seed)
        record = sim.run(clean)
        for det in clean.detectors:
            value = 0
            for m in det.measurements:
                value ^= record[m]
            assert value == 0, f"detector {det.coord} fired without noise"
        for obs in clean.observables:
            value = 0
            for m in obs.measurements:
                value ^= record[m]
            observed.add(value)
    assert observed == {0}, "logical observable not deterministic"


@pytest.mark.parametrize("distance", [2, 3, 5])
@pytest.mark.parametrize("basis", ["Z", "X"])
def test_noiseless_detectors_deterministic(distance, basis):
    memory = baseline_memory_circuit(distance, noiseless_model(), basis=basis)
    assert_detectors_deterministic(memory)


class TestShape:
    def test_default_rounds_equals_distance(self):
        memory = baseline_memory_circuit(3, noiseless_model())
        assert memory.rounds == 3

    def test_detector_count(self):
        d, r = 3, 3
        memory = baseline_memory_circuit(d, noiseless_model(), rounds=r)
        n_anc = d * d - 1
        # Round 0 gives (d²−1)/2 detectors, each later round d²−1, and the
        # final data comparison another (d²−1)/2.
        expected = n_anc // 2 + (r - 1) * n_anc + n_anc // 2
        assert len(memory.circuit.detectors) == expected

    def test_measurement_count(self):
        d, r = 3, 2
        memory = baseline_memory_circuit(d, noiseless_model(), rounds=r)
        assert memory.circuit.num_measurements == r * (d * d - 1) + d * d

    def test_observable_is_logical_row(self):
        memory = baseline_memory_circuit(3, noiseless_model(), basis="Z")
        (obs,) = memory.circuit.observables
        assert len(obs.measurements) == 3
        assert obs.basis == "Z"

    def test_duration_accumulates(self):
        em = noiseless_model()
        memory = baseline_memory_circuit(3, em, rounds=2)
        per_round = standard_round_duration(em)
        hw = em.hardware
        assert memory.duration == pytest.approx(
            hw.t_reset + 2 * per_round + hw.t_measure
        )

    def test_rejects_zero_rounds(self):
        with pytest.raises(ValueError):
            baseline_memory_circuit(3, noiseless_model(), rounds=0)

    def test_rejects_bad_basis(self):
        with pytest.raises(ValueError):
            baseline_memory_circuit(3, noiseless_model(), basis="Y")


class TestNoiseAnnotations:
    def test_noisy_circuit_has_noise(self):
        em = ErrorModel(hardware=BASELINE_HARDWARE, p=1e-3)
        memory = baseline_memory_circuit(3, em)
        assert memory.circuit.noise_instruction_count() > 0

    def test_two_qubit_noise_follows_every_cnot(self):
        em = ErrorModel(hardware=BASELINE_HARDWARE, p=1e-3)
        memory = baseline_memory_circuit(3, em)
        instructions = memory.circuit.instructions
        for i, ins in enumerate(instructions):
            if ins.name == "CX":
                assert instructions[i + 1].name == "DEPOLARIZE2"
                assert instructions[i + 1].targets == ins.targets

    def test_idle_noise_present_for_data(self):
        em = ErrorModel(hardware=BASELINE_HARDWARE, p=1e-3)
        memory = baseline_memory_circuit(3, em)
        deps = [i for i in memory.circuit.instructions if i.name == "DEPOLARIZE1"]
        assert deps, "expected idle/1q depolarization"
