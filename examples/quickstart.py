"""Quickstart: error-correct one virtualized logical qubit.

Builds the paper's proof-of-concept machine — a single Compact distance-3
stack needing just **11 transmons and 9 cavities** — runs Interleaved
syndrome extraction under the Table-I noise model, decodes with union-find,
and prints the logical error rate.
"""

from repro import ErrorModel, MEMORY_HARDWARE
from repro import compact_memory_circuit, run_memory_experiment
from repro.arch import CompactLayout
from repro.surface_code import RotatedSurfaceCode


def main() -> None:
    code = RotatedSurfaceCode(3)
    layout = CompactLayout(code)
    print("Proof-of-concept Compact stack (paper §I / §VIII):")
    print(f"  transmons: {layout.num_transmons}   cavities: {layout.num_cavities}")
    print(f"  logical qubits stored (k=10, one free mode): 9")
    print()
    print(code.ascii_diagram())
    print()

    model = ErrorModel(hardware=MEMORY_HARDWARE, p=2e-3)
    memory = compact_memory_circuit(3, model, schedule="interleaved")
    print(f"Scheme: {memory.scheme}, {memory.rounds} rounds, "
          f"{memory.circuit.num_detectors} detectors, "
          f"service period {memory.duration * 1e6:.1f} us")

    result = run_memory_experiment(memory, shots=4000, seed=1)
    low, high = result.confidence_interval
    print(f"Logical error rate @ p=2e-3: {result.logical_error_rate:.2e} "
          f"(95% CI [{low:.2e}, {high:.2e}])")


if __name__ == "__main__":
    main()
