"""Mini Figure-11 study: thresholds of the baseline vs the 2.5D schemes.

Sweeps the physical error rate for two code distances per scheme and
prints the logical error rates plus the estimated crossing point.  Use
REPRO_SHOTS to raise fidelity (the paper used 2,000,000 trials/point).
"""

import os

from repro.report import format_series
from repro.threshold import SCHEMES, estimate_threshold

SHOTS = int(os.environ.get("REPRO_SHOTS", "800"))


def main() -> None:
    ps = [3e-3, 5e-3, 7e-3, 9e-3, 1.2e-2]
    for scheme in SCHEMES:
        study = estimate_threshold(
            scheme, physical_error_rates=ps, distances=(3, 5), shots=SHOTS, seed=0
        )
        series = {
            f"d={d}": study.logical_rates(d) for d in sorted(study.results)
        }
        print(format_series(ps, series, xlabel="p", title=f"--- {scheme} ---"))
        threshold = study.threshold_estimate()
        if threshold is None:
            print("threshold: not bracketed by this sweep")
        else:
            print(f"threshold estimate: {threshold:.4f}")
        print()


if __name__ == "__main__":
    main()
