"""Magic-state factory comparison (paper §VII, Fig. 13 and Table II).

Compares the T-state throughput and qubit cost of the two conventional
lattice-surgery factories against VQubits, and compiles the 15-to-1
distillation circuit onto a single stack with the VLQ compiler.
"""

from repro.magic import (
    FAST_LATTICE,
    PROTOCOLS,
    SMALL_LATTICE,
    VQUBITS,
    generation_rate,
    patches_for_one_state_per_step,
    qubit_cost_table,
    speedup_over,
    vqubits_distillation_schedule,
)
from repro.report import ascii_table


def main() -> None:
    rows = [
        (
            p.name,
            f"{generation_rate(p, 100):.3f}",
            f"{patches_for_one_state_per_step(p):.0f}",
        )
        for p in PROTOCOLS
    ]
    print(ascii_table(
        ["protocol", "|T>/step @100 patches", "patches for 1 |T>/step"],
        rows,
        title="Fig. 13 reproduction",
    ))
    print()
    print(f"VQubits vs Small: {speedup_over(VQUBITS, SMALL_LATTICE):.2f}x "
          f"(paper: 1.22x)")
    print(f"VQubits vs Fast:  {speedup_over(VQUBITS, FAST_LATTICE):.2f}x "
          f"(paper: 1.82x)")
    print()

    print(ascii_table(
        ["protocol", "# transmons", "# cavities", "total qubits"],
        [c.row() for c in qubit_cost_table(distance=5, cavity_modes=10)],
        title="Table II reproduction (d=5, k=10)",
    ))
    print()

    schedule = vqubits_distillation_schedule()
    print("15-to-1 compiled on one VQubits stack by the VLQ compiler:")
    print(f"  timesteps: {schedule.timesteps} (paper's hand schedule: 110; "
          f"99 per circuit in lock-step pairs)")
    print(f"  CNOTs: {schedule.cnots}, transversal fraction: "
          f"{schedule.transversal_fraction:.0%}, refresh violations: "
          f"{schedule.refresh_violations}")


if __name__ == "__main__":
    main()
