"""Compile, *execute* and *noise-simulate* a program on virtualized qubits.

Demonstrates the paging scheduler end to end three ways: a GHZ circuit
is compiled onto a 2.5D machine (co-location makes every CNOT
transversal); the same logical circuit is executed on exact encoded
patches in the stabilizer simulator to verify the state really is GHZ;
and finally the compiled schedule's per-qubit timelines are lowered onto
noisy circuits and Monte-Carlo'd through the packed engine, comparing
the Compact and Natural embeddings program-wide.
"""

from repro.core import LogicalProgram, Machine, compile_program
from repro.surgery import SurgeryLab, transversal_cnot


def compile_side() -> None:
    program = LogicalProgram.ghz(6)
    machine = Machine(stack_grid=(2, 2), cavity_modes=10, distance=5)
    schedule = compile_program(program, machine)
    print("=== compiled schedule ===")
    print(schedule.timeline())
    print("CNOT breakdown:", schedule.cnot_breakdown())
    print(f"refresh rounds: {schedule.refresh_rounds}, "
          f"violations: {schedule.refresh_violations}")
    print(f"machine: {machine.total_transmons} transmons, "
          f"{machine.total_cavities} cavities, capacity "
          f"{machine.logical_capacity} logical qubits")
    print()

    surgery_only = compile_program(program, machine, policy="surgery_only")
    print(f"same program, conventional lattice surgery only: "
          f"{surgery_only.total_timesteps} vs {schedule.total_timesteps} timesteps")
    print()


def execute_side() -> None:
    # Execute GHZ-3 on exact encoded d=3 patches (transversal CNOTs, as
    # the compiler chose) and verify the logical correlations.
    n, d = 3, 3
    lab = SurgeryLab(n * d * d, seed=0)
    patches = [lab.allocate_patch(f"q{i}", d) for i in range(n)]
    for p in patches:
        lab.encode_zero(p)
    # H on q0 realized as |+> preparation (fresh qubit).
    lab.sim.measure_pauli(patches[0].logical_x(), forced_outcome=0)
    for i in range(n - 1):
        transversal_cnot(lab, patches[i], patches[i + 1])

    print("=== execution on encoded patches ===")
    all_x = patches[0].logical_x()
    for p in patches[1:]:
        all_x = all_x * p.logical_x()
    print("  <X X X> =", lab.sim.peek_pauli_expectation(all_x))
    for i in range(n - 1):
        zz = patches[i].logical_z() * patches[i + 1].logical_z()
        print(f"  <Z{i} Z{i+1}> =", lab.sim.peek_pauli_expectation(zz))
    outcomes = [lab.measure_logical(p, "Z") for p in patches]
    print("  sampled logical readout:", outcomes, "(all equal => GHZ)")


def noisy_side() -> None:
    # Lower the compiled per-qubit timelines onto noisy circuits and run
    # the program-level Monte-Carlo: Compact vs Natural, end to end.
    from repro.report import ascii_table
    from repro.vlq import ArchitectureComparison, compare_architectures

    program = LogicalProgram.bell_pairs(4)
    comparison = compare_architectures(
        program, distances=(3,), shots=500, program_name="pairs"
    )
    print()
    print("=== program-level noisy Monte-Carlo ===")
    print(ascii_table(
        ArchitectureComparison.TABLE_HEADERS,
        comparison.table_rows(),
        title="Bell pairs on a 2x2 machine (500 shots/qubit, p=2e-3)",
    ))
    lowering = comparison.lowering_cache.stats()
    print(f"  ({lowering['entries']} distinct timeline shapes lowered once, "
          f"{lowering['hits']} cache hits)")


if __name__ == "__main__":
    compile_side()
    execute_side()
    noisy_side()
