"""Process tomography of both logical CNOT implementations (§III-B).

Reproduces the paper's verification that the transversal CNOT "applies the
expected CNOT unitary in simulation", and does the same for the 6x-slower
merge/split lattice-surgery CNOT, using exact Choi-state tomography on the
stabilizer simulator.  Also demonstrates the honest plaquette-level rough
merge with classical outcome extraction.
"""

from repro.surgery import (
    SurgeryLab,
    tomography_of_lattice_surgery_cnot,
    tomography_of_transversal_cnot,
)
from repro.surgery.physical import VerticalPair


def main() -> None:
    process_map, is_cnot = tomography_of_transversal_cnot(distance=3, seed=0)
    print("Transversal CNOT (1 timestep) process map:")
    for generator, (sign, image) in process_map.items():
        print(f"  {generator} -> {'+' if sign > 0 else '-'}{image}")
    print("  matches ideal CNOT:", is_cnot)
    print()

    for seed in range(3):
        _, is_cnot = tomography_of_lattice_surgery_cnot(distance=3, seed=seed)
        print(f"Lattice-surgery CNOT (6 timesteps), outcome branch #{seed}: "
              f"matches ideal CNOT: {is_cnot}")
    print()

    print("Plaquette-level rough merge (joint Z x Z measurement):")
    for a in (0, 1):
        for b in (0, 1):
            d = 3
            lab = SurgeryLab(2 * d * d + d, seed=a * 2 + b)
            pair = VerticalPair.allocate(lab, d)
            lab.encode_zero(pair.top)
            lab.encode_zero(pair.bottom)
            if a:
                lab.apply_logical(pair.top, "X")
            if b:
                lab.apply_logical(pair.bottom, "X")
            m = pair.merge()
            pair.split()
            print(f"  |{a}{b}> -> measured Z(x)Z = {m} (expected {a ^ b})")


if __name__ == "__main__":
    main()
