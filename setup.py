"""Setup shim for environments without the `wheel` package (offline dev installs)."""
from setuptools import setup

setup()
